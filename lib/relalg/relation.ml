type t = {
  schema : Schema.t;
  rows : Tuple.t array;
  cache : Column.cache; (* memoized numeric columns, one slot per attr *)
}

let make schema rows =
  { schema; rows; cache = Column.cache_create (Schema.arity schema) }

let check_arity schema tuple =
  if Tuple.arity tuple <> Schema.arity schema then
    invalid_arg "Relation: tuple arity does not match schema"

let of_array schema rows =
  Array.iter (check_arity schema) rows;
  make schema rows

let of_rows schema rows = of_array schema (Array.of_list rows)

let of_array_columns schema rows cols =
  let r = of_array schema rows in
  List.iter
    (fun (i, c) ->
      if i < 0 || i >= Schema.arity schema then
        invalid_arg "Relation.of_array_columns: attribute position out of range";
      (match (Schema.attr_at schema i).Schema.ty with
      | Value.TInt | Value.TFloat -> ()
      | Value.TStr | Value.TBool ->
        invalid_arg "Relation.of_array_columns: non-numeric attribute");
      if Column.length c <> Array.length rows then
        invalid_arg "Relation.of_array_columns: column length mismatch";
      Column.cache_seed r.cache i c)
    cols;
  r

type builder = { bschema : Schema.t; mutable acc : Tuple.t list; mutable n : int }

let builder bschema = { bschema; acc = []; n = 0 }

let add b tuple =
  check_arity b.bschema tuple;
  b.acc <- tuple :: b.acc;
  b.n <- b.n + 1

let seal b =
  let rows = Array.make b.n [||] in
  List.iteri (fun i t -> rows.(b.n - 1 - i) <- t) b.acc;
  make b.bschema rows

let schema r = r.schema
let cardinality r = Array.length r.rows

let row r i =
  if i < 0 || i >= Array.length r.rows then
    invalid_arg (Printf.sprintf "Relation.row: index %d out of range" i);
  r.rows.(i)

let iter f r = Array.iteri f r.rows

let fold f init r =
  let acc = ref init in
  Array.iteri (fun i t -> acc := f !acc i t) r.rows;
  !acc

let to_list r = Array.to_list r.rows

(* ------------------------------------------------------------------ *)
(* Columnar access                                                    *)
(* ------------------------------------------------------------------ *)

let column_at r i =
  let numeric =
    match (Schema.attr_at r.schema i).Schema.ty with
    | Value.TInt | Value.TFloat -> true
    | Value.TStr | Value.TBool -> false
  in
  Column.cached r.cache r.rows ~numeric i

let column r name =
  match Schema.index_of_opt r.schema name with
  | None -> None
  | Some i -> column_at r i

let column_exn r name =
  match column r name with
  | Some c -> c
  | None ->
    invalid_arg ("Relation.column_exn: no numeric column " ^ name)

let column_float r name =
  let i = Schema.index_of r.schema name in
  match column_at r i with
  | Some c -> Array.copy (Column.data c)
  | None ->
    (* non-numeric per schema: preserve the historical behaviour of
       mapping every cell through to_float_opt *)
    Array.map
      (fun t ->
        match Value.to_float_opt (Tuple.get t i) with
        | Some f -> f
        | None -> nan)
      r.rows

let compile_pred r pred = Expr.compile r.schema ~columns:(column_at r) pred

let compile_num r e = Expr.compile_num r.schema ~columns:(column_at r) e

(* ------------------------------------------------------------------ *)
(* Operators                                                          *)
(* ------------------------------------------------------------------ *)

(* Selection runs the vectorized path when the predicate lowers onto
   cached columns, and a single-pass mask + count-then-fill row path
   otherwise. Both avoid per-row Seq/list churn. *)
let select_mask r pred =
  let n = Array.length r.rows in
  let mask = Bytes.make n '\000' in
  let kept = ref 0 in
  (match compile_pred r pred with
  | Some f ->
    for i = 0 to n - 1 do
      if f i = 1 then begin
        Bytes.unsafe_set mask i '\001';
        incr kept
      end
    done
  | None ->
    for i = 0 to n - 1 do
      if Expr.eval_bool r.schema (Array.unsafe_get r.rows i) pred then begin
        Bytes.unsafe_set mask i '\001';
        incr kept
      end
    done);
  mask, !kept

let select r pred =
  let mask, kept = select_mask r pred in
  let rows = Array.make kept [||] in
  let k = ref 0 in
  for i = 0 to Array.length r.rows - 1 do
    if Bytes.unsafe_get mask i = '\001' then begin
      Array.unsafe_set rows !k (Array.unsafe_get r.rows i);
      incr k
    end
  done;
  make r.schema rows

let select_indices r pred =
  let mask, kept = select_mask r pred in
  let out = Array.make kept 0 in
  let k = ref 0 in
  for i = 0 to Bytes.length mask - 1 do
    if Bytes.unsafe_get mask i = '\001' then begin
      Array.unsafe_set out !k i;
      incr k
    end
  done;
  out

let project r names =
  let idxs = Array.of_list (List.map (Schema.index_of r.schema) names) in
  let schema = Schema.project r.schema names in
  let w = Array.length idxs in
  let rows =
    Array.map
      (fun t -> Array.init w (fun k -> Tuple.get t idxs.(k)))
      r.rows
  in
  make schema rows

let take r ids = make r.schema (Array.map (fun i -> row r i) ids)

let prefix r n =
  let n = min n (Array.length r.rows) in
  make r.schema (Array.sub r.rows 0 n)

let append_column r attr values =
  if Array.length values <> Array.length r.rows then
    invalid_arg "Relation.append_column: wrong number of values";
  let schema = Schema.extend r.schema attr in
  let rows =
    Array.mapi
      (fun i t ->
        let w = Array.length t in
        let nt = Array.make (w + 1) values.(i) in
        Array.blit t 0 nt 0 w;
        nt)
      r.rows
  in
  make schema rows

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@]" Schema.pp r.schema
    (Format.pp_print_list Tuple.pp)
    (to_list r)
