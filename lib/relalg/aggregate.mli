(** Aggregate functions over relations (and over arbitrary tuple
    sequences, for package materializations). NULLs are skipped, as in
    SQL; [Sum]/[Avg]/[Min]/[Max] of an all-null column is [Null]. *)

type func = Count_star | Count of string | Sum of string | Avg of string
          | Min of string | Max of string

(** [over_rows schema rows f] computes [f] over a tuple sequence. *)
val over_rows : Schema.t -> Tuple.t Seq.t -> func -> Value.t

(** [over relation ?where f] computes [f] over the (optionally filtered)
    relation. Numeric attributes take the vectorized {!Scan} path over
    cached columns ([workers] forwards to it); others fall back to the
    interpreted row scan. *)
val over : ?workers:int -> ?where:Expr.t -> Relation.t -> func -> Value.t

(** [float_result v] coerces an aggregate result to float, mapping
    [Null] (empty input) to [0.] for COUNT/SUM and raising otherwise. *)
val sum_or_zero : Value.t -> float

val attr_of : func -> string option
val pp : Format.formatter -> func -> unit
