(** Scalar expressions over a single tuple: arithmetic, comparisons and
    boolean connectives with SQL three-valued logic. These are the base
    (WHERE-clause) predicates of package queries. *)

type binop = Add | Sub | Mul | Div

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Attr of string
  | Binop of binop * t * t
  | Neg of t
  | Cmp of cmp * t * t
  | Between of t * t * t  (** [Between (e, lo, hi)] — inclusive. *)
  | And of t * t
  | Or of t * t
  | Not of t
  | IsNull of t
  | IsNotNull of t

(** [eval schema tuple e] evaluates [e]; comparison and boolean nodes
    yield [Bool] or [Null] per SQL logic.
    @raise Invalid_argument on type errors (e.g. arithmetic on strings). *)
val eval : Schema.t -> Tuple.t -> t -> Value.t

(** [eval_bool schema tuple e] is [true] iff [e] evaluates to [Bool true]
    ([Null] counts as false, as in a SQL WHERE clause). *)
val eval_bool : Schema.t -> Tuple.t -> t -> bool

(** {1 Vectorized lowering}

    Predicates over numeric attributes can be lowered into closures
    over unboxed column arrays, avoiding per-row AST interpretation
    and boxed [Value.t] traffic. [eval] remains the semantic
    reference; the lowered form agrees with it on every input (see the
    equivalence test suite), with NULL encoded as [nan]. *)

(** Three-valued results of a lowered boolean closure. *)
val tri_false : int (** 0 *)

val tri_true : int (** 1 *)

val tri_null : int (** 2 *)

(** [compile schema ~columns e] lowers boolean expression [e] to a
    per-row evaluator returning {!tri_false}/{!tri_true}/{!tri_null}.
    [columns i] supplies the cached column for attribute position [i]
    ([None] if non-numeric). Returns [None] when [e] touches
    non-numeric attributes or constants — callers must then fall back
    to {!eval}. *)
val compile :
  Schema.t -> columns:(int -> Column.t option) -> t -> (int -> int) option

(** [compile_num schema ~columns e] lowers a numeric expression to a
    per-row [float] evaluator (NULL as [nan]). *)
val compile_num :
  Schema.t -> columns:(int -> Column.t option) -> t -> (int -> float) option

(** Attribute names referenced by the expression, without duplicates. *)
val attrs : t -> string list

(** Check the expression against a schema: all attributes exist and
    operand types are sensible. Returns [Error msg] on failure. *)
val check : Schema.t -> t -> (unit, string) result

val pp : Format.formatter -> t -> unit
