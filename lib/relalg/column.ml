type t = {
  data : float array; (* nan at NULL cells *)
  nulls : Bytes.t; (* 1 = NULL *)
  n_nulls : int;
  mutable zeroed : float array option; (* data with NULLs as 0., lazy *)
}

let of_rows rows i =
  let n = Array.length rows in
  let data = Array.make n 0. in
  let nulls = Bytes.make n '\000' in
  let n_nulls = ref 0 in
  for row = 0 to n - 1 do
    match Array.unsafe_get (Array.unsafe_get rows row) i with
    | Value.Int x -> Array.unsafe_set data row (float_of_int x)
    | Value.Float f -> Array.unsafe_set data row f
    | Value.Null | Value.Str _ | Value.Bool _ ->
      Array.unsafe_set data row nan;
      Bytes.unsafe_set nulls row '\001';
      incr n_nulls
  done;
  { data; nulls; n_nulls = !n_nulls; zeroed = None }

let of_raw ~data ~nulls =
  let n = Array.length data in
  if Bytes.length nulls <> n then
    invalid_arg "Column.of_raw: data and null map lengths differ";
  let n_nulls = ref 0 in
  for i = 0 to n - 1 do
    if Bytes.unsafe_get nulls i = '\001' then begin
      Array.unsafe_set data i nan;
      incr n_nulls
    end
  done;
  { data; nulls; n_nulls = !n_nulls; zeroed = None }

let length c = Array.length c.data
let data c = c.data

let zeroed c =
  match c.zeroed with
  | Some z -> z
  | None ->
    let z =
      if c.n_nulls = 0 then c.data
      else
        Array.map (fun v -> if Float.is_nan v then 0. else v) c.data
    in
    c.zeroed <- Some z;
    z

let is_null c i = Bytes.unsafe_get c.nulls i = '\001'
let n_nulls c = c.n_nulls
let has_nulls c = c.n_nulls > 0

type slot = Not_loaded | Numeric of t | Not_numeric

type cache = { mutable slots : slot array; lock : Mutex.t }

let cache_create arity = { slots = Array.make arity Not_loaded; lock = Mutex.create () }

let cache_seed cache i c =
  Mutex.lock cache.lock;
  let ok = cache.slots.(i) = Not_loaded in
  if ok then cache.slots.(i) <- Numeric c;
  Mutex.unlock cache.lock;
  if not ok then invalid_arg "Column.cache_seed: slot already materialized"

let cached cache rows ~numeric i =
  Mutex.lock cache.lock;
  let r =
    match cache.slots.(i) with
    | Numeric c -> Some c
    | Not_numeric -> None
    | Not_loaded ->
      if not numeric then begin
        cache.slots.(i) <- Not_numeric;
        None
      end
      else begin
        let c = of_rows rows i in
        cache.slots.(i) <- Numeric c;
        Some c
      end
  in
  Mutex.unlock cache.lock;
  r
