let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)

let default_workers () =
  env_int "PKGQ_SCAN_WORKERS" (Domain.recommended_domain_count ())

let chunk_size () = env_int "PKGQ_SCAN_CHUNK" 16384

(* [run_chunks ~workers n f] evaluates [f ci lo hi] for every chunk
   [ci] covering [lo, hi) of [0, n) and returns the per-chunk results
   in chunk order. Chunks are striped across workers; [f] must only
   read data materialized before the call. *)
let run_chunks ~workers n f =
  let csize = chunk_size () in
  let nchunks = (n + csize - 1) / csize in
  let bounds ci = (ci * csize, min n ((ci + 1) * csize)) in
  if nchunks = 0 then [||]
  else if workers <= 1 || nchunks = 1 then
    Array.init nchunks (fun ci ->
        let lo, hi = bounds ci in
        f ci lo hi)
  else begin
    let w = min workers nchunks in
    let results = Array.make nchunks None in
    let spawn k =
      Domain.spawn (fun () ->
          let ci = ref k in
          while !ci < nchunks do
            let lo, hi = bounds !ci in
            results.(!ci) <- Some (f !ci lo hi);
            ci := !ci + w
          done)
    in
    let handles = List.init w spawn in
    List.iter Domain.join handles;
    Array.map (function Some r -> r | None -> assert false) results
  end

(* Per-row predicate evaluator: vectorized when possible, interpreted
   otherwise. Forces column materialization on the calling domain. *)
let pred_fn r pred =
  match Relation.compile_pred r pred with
  | Some f -> fun i -> f i = 1
  | None ->
    let schema = Relation.schema r in
    fun i -> Expr.eval_bool schema (Relation.row r i) pred

let mask ?(workers = -1) r pred =
  let workers = if workers < 0 then default_workers () else workers in
  let n = Relation.cardinality r in
  let m = Bytes.make n '\000' in
  let f = pred_fn r pred in
  let counts =
    run_chunks ~workers n (fun _ lo hi ->
        let c = ref 0 in
        for i = lo to hi - 1 do
          if f i then begin
            Bytes.unsafe_set m i '\001';
            incr c
          end
        done;
        !c)
  in
  (m, Array.fold_left ( + ) 0 counts)

let select_indices ?workers r pred =
  let m, kept = mask ?workers r pred in
  let out = Array.make kept 0 in
  let k = ref 0 in
  for i = 0 to Bytes.length m - 1 do
    if Bytes.unsafe_get m i = '\001' then begin
      Array.unsafe_set out !k i;
      incr k
    end
  done;
  out

let select ?workers r pred = Relation.take r (select_indices ?workers r pred)

let count ?workers r pred = snd (mask ?workers r pred)

type stats = { sum : float; n : int; rows : int; mn : float; mx : float }

let empty_stats = { sum = 0.; n = 0; rows = 0; mn = infinity; mx = neg_infinity }

let merge_stats a b =
  {
    sum = a.sum +. b.sum;
    n = a.n + b.n;
    rows = a.rows + b.rows;
    mn = Float.min a.mn b.mn;
    mx = Float.max a.mx b.mx;
  }

let float_stats ?(workers = -1) ?where r name =
  let workers = if workers < 0 then default_workers () else workers in
  match Relation.column r name with
  | None -> None
  | Some col ->
    let data = Column.data col in
    let keep =
      match where with
      | None -> fun _ -> true
      | Some pred -> pred_fn r pred
    in
    let chunk _ lo hi =
      let sum = ref 0. and n = ref 0 and rows = ref 0 in
      let mn = ref infinity and mx = ref neg_infinity in
      for i = lo to hi - 1 do
        if keep i then begin
          incr rows;
          let v = Array.unsafe_get data i in
          if not (Float.is_nan v) then begin
            sum := !sum +. v;
            incr n;
            if v < !mn then mn := v;
            if v > !mx then mx := v
          end
        end
      done;
      { sum = !sum; n = !n; rows = !rows; mn = !mn; mx = !mx }
    in
    let parts = run_chunks ~workers (Relation.cardinality r) chunk in
    Some (Array.fold_left merge_stats empty_stats parts)
