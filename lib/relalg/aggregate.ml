type func = Count_star | Count of string | Sum of string | Avg of string
          | Min of string | Max of string

let over_rows schema rows f =
  match f with
  | Count_star ->
    Value.Int (Seq.fold_left (fun n _ -> n + 1) 0 rows)
  | Count a ->
    let i = Schema.index_of schema a in
    Value.Int
      (Seq.fold_left
         (fun n t -> if Value.is_null (Tuple.get t i) then n else n + 1)
         0 rows)
  | Sum a | Avg a | Min a | Max a ->
    let i = Schema.index_of schema a in
    let sum = ref 0. and n = ref 0 in
    let mn = ref infinity and mx = ref neg_infinity in
    Seq.iter
      (fun t ->
        match Value.to_float_opt (Tuple.get t i) with
        | None -> ()
        | Some v ->
          sum := !sum +. v;
          incr n;
          if v < !mn then mn := v;
          if v > !mx then mx := v)
      rows;
    if !n = 0 then Value.Null
    else begin
      match f with
      | Sum _ -> Value.Float !sum
      | Avg _ -> Value.Float (!sum /. float_of_int !n)
      | Min _ -> Value.Float !mn
      | Max _ -> Value.Float !mx
      | Count_star | Count _ -> assert false
    end

(* Row-path fallback, kept as the semantic reference for attributes
   that have no cached column (strings/booleans). *)
let over_interp ?where r f =
  let rows = Array.to_seq (Array.init (Relation.cardinality r) (Relation.row r)) in
  let rows =
    match where with
    | None -> rows
    | Some pred ->
      Seq.filter (fun t -> Expr.eval_bool (Relation.schema r) t pred) rows
  in
  over_rows (Relation.schema r) rows f

let over ?workers ?where r f =
  let stats a = Scan.float_stats ?workers ?where r a in
  match f with
  | Count_star -> (
    match where with
    | None -> Value.Int (Relation.cardinality r)
    | Some pred -> Value.Int (Scan.count ?workers r pred))
  | Count a -> (
    match stats a with
    | Some s -> Value.Int s.Scan.n
    | None -> over_interp ?where r f)
  | Sum a | Avg a | Min a | Max a -> (
    match stats a with
    | None -> over_interp ?where r f
    | Some s ->
      if s.Scan.n = 0 then Value.Null
      else
        Value.Float
          (match f with
          | Sum _ -> s.Scan.sum
          | Avg _ -> s.Scan.sum /. float_of_int s.Scan.n
          | Min _ -> s.Scan.mn
          | Max _ -> s.Scan.mx
          | Count_star | Count _ -> assert false))

let sum_or_zero = function
  | Value.Null -> 0.
  | v -> Value.to_float v

let attr_of = function
  | Count_star -> None
  | Count a | Sum a | Avg a | Min a | Max a -> Some a

let pp ppf = function
  | Count_star -> Format.pp_print_string ppf "COUNT(*)"
  | Count a -> Format.fprintf ppf "COUNT(%s)" a
  | Sum a -> Format.fprintf ppf "SUM(%s)" a
  | Avg a -> Format.fprintf ppf "AVG(%s)" a
  | Min a -> Format.fprintf ppf "MIN(%s)" a
  | Max a -> Format.fprintf ppf "MAX(%s)" a
