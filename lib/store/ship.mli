(** WAL shipping — the read side of primary → replica replication.

    The coordinator replicates a primary by replaying its WAL records
    onto the replica through the ordinary APPEND/DELETE verbs: both
    processes apply the identical op sequence, so their content
    fingerprints must agree (divergence is detectable with one FPRINT
    each). A {!cursor} tracks the last shipped sequence number; on
    primary death, promotion is simply [pending] (the records the
    replica has not seen) shipped from the dead primary's on-disk log,
    then a routing flip. Replica lag in records is the primary's
    {!last_seq} minus the cursor {!position}.

    A cursor also carries a {e fence epoch}: after a promotion at epoch
    E the coordinator calls {!set_fence}[ c E], and {!pending} refuses
    to ship any record stamped with an older epoch — the writes a
    SIGSTOPped-then-resumed zombie primary appended after losing its
    shard. Catch-up shipping must therefore complete {e before} the
    fence is raised: records the old primary legitimately acked at the
    old epoch ship during promotion, everything after is fenced. *)

type cursor

(** [make ?since path] — a cursor over the WAL file at [path], starting
    after sequence number [since] (default 0 = ship everything). *)
val make : ?since:int -> string -> cursor

(** Last shipped sequence number. *)
val position : cursor -> int

(** Valid records past the cursor, in write order. Re-reads the file;
    does not advance the cursor (call {!advance} after each record is
    acknowledged by the replica) — except for records older than the
    fence epoch, which are dropped, counted in {!fenced_count}, and
    skipped past. A torn tail ends the readable prefix, exactly as
    recovery would see it.
    @raise Sys_error when the log file exists but cannot be read. *)
val pending : cursor -> Wal.record list

(** [set_fence c epoch] — reject records stamped below [epoch] from now
    on (monotone: a lower fence than the current one is a no-op). *)
val set_fence : cursor -> int -> unit

(** The current fence epoch (0 = unfenced). *)
val fence : cursor -> int

(** How many records {!pending} has dropped as fenced. *)
val fenced_count : cursor -> int

(** [advance c seq] — the replica acknowledged everything up to [seq].
    Monotone: an older [seq] is a no-op. *)
val advance : cursor -> int -> unit

(** Newest valid sequence number in the log at [path] (0 for an empty
    or missing log). *)
val last_seq : string -> int
