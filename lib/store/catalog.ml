module P = Pkg.Partition

type t = { root : string }

let env_var = "PKGQ_STORE_DIR"
let default_dir = ".pkgq-store"

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755
    with Sys_error _ when Sys.file_exists d -> ()
  end

let tables_dir t = Filename.concat t.root "tables"
let partitions_dir t = Filename.concat t.root "partitions"

(* Temp files left by a writer that died between creating its
   [.tmp.<pid>] sibling and renaming it over the target. They are never
   read (readers filter on real suffixes), so the sweep is pure
   hygiene — but without it a crashy writer leaks one file per death. *)
let sweep_stale_tmp dir =
  let is_tmp f =
    (* both the current [x.tmp.<pid>] shape and a legacy bare [x.tmp] *)
    Filename.extension f = ".tmp"
    || Filename.extension (Filename.remove_extension f) = ".tmp"
  in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f ->
        if is_tmp f then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      files

let open_dir root =
  let t = { root } in
  mkdir_p (tables_dir t);
  mkdir_p (partitions_dir t);
  sweep_stale_tmp (tables_dir t);
  sweep_stale_tmp (partitions_dir t);
  t

let from_env () = Option.map open_dir (Sys.getenv_opt env_var)

let dir t = t.root

(* ------------------------------------------------------------------ *)
(* Table cache                                                        *)
(* ------------------------------------------------------------------ *)

let is_segment_path path = Filename.check_suffix path ".seg"

let table_path t fp = Filename.concat (tables_dir t) (fp ^ ".seg")

let table_cached t path =
  (not (is_segment_path path))
  && Sys.file_exists path
  && Sys.file_exists (table_path t (Segment.fingerprint_file path))

let load_table t path =
  let s = Wire.read_file path in
  let fp = Wire.hex64 (Wire.hash64 s) in
  if is_segment_path path then (Segment.of_string s, fp)
  else
    let seg = table_path t fp in
    if Sys.file_exists seg then (Segment.read seg, fp)
    else begin
      let rel = Relalg.Csv.of_string s in
      Segment.write seg rel;
      (rel, fp)
    end

(* ------------------------------------------------------------------ *)
(* Keys                                                               *)
(* ------------------------------------------------------------------ *)

type key = {
  fingerprint : string;
  attrs : string list;
  tau : int;
  radius : P.radius_spec;
  level : int option;
}

let radius_string = function
  | P.No_radius -> "none"
  | P.Absolute omega -> Printf.sprintf "abs:%.17g" omega
  | P.Theorem { epsilon; maximize } ->
    Printf.sprintf "thm:%.17g:%s" epsilon (if maximize then "max" else "min")

(* Attribute order is irrelevant to what was computed (the same groups
   come out of the same attribute set), so the key canonicalizes it --
   otherwise a caller listing attributes in a different order triggers
   a silent full rebuild of an identical partitioning. *)
let canon_attrs attrs = List.sort compare attrs

let key_string k =
  Printf.sprintf "%s|%s|tau=%d|radius=%s%s" k.fingerprint
    (String.concat "," (canon_attrs k.attrs))
    k.tau (radius_string k.radius)
    (match k.level with
    | None -> ""
    | Some l -> Printf.sprintf "|level=%d" l)

let key_id k = Wire.hex64 (Wire.hash64 (key_string k))

(* Where a pre-canonicalization catalog (order-sensitive attrs, no
   level field) would have filed this key. Flat keys whose attrs happen
   to arrive sorted produce the same id as [key_id]; others give the
   legacy lookup a second chance. *)
let legacy_key_id k =
  Wire.hex64
    (Wire.hash64
       (Printf.sprintf "%s|%s|tau=%d|radius=%s" k.fingerprint
          (String.concat "," k.attrs)
          k.tau (radius_string k.radius)))

(* Key equality modulo attribute order (the stored entry may predate
   canonicalization). *)
let key_matches ~stored ~wanted =
  stored.fingerprint = wanted.fingerprint
  && canon_attrs stored.attrs = canon_attrs wanted.attrs
  && stored.tau = wanted.tau
  && stored.radius = wanted.radius
  && stored.level = wanted.level

(* ------------------------------------------------------------------ *)
(* Partition files                                                    *)
(* ------------------------------------------------------------------ *)

let part_magic = "PKGQPART"

(* v1: flat keys only (no level field). v2 appends the key's level
   after the radius spec. [read_part] decodes both, so catalogs written
   before the hierarchy era keep loading. *)
let part_version = 2

let part_path t k = Filename.concat (partitions_dir t) (key_id k ^ ".part")

let encode_radius b = function
  | P.No_radius -> Wire.put_u8 b 0
  | P.Absolute omega ->
    Wire.put_u8 b 1;
    Wire.put_f64 b omega
  | P.Theorem { epsilon; maximize } ->
    Wire.put_u8 b 2;
    Wire.put_f64 b epsilon;
    Wire.put_u8 b (if maximize then 1 else 0)

let decode_radius r =
  match Wire.get_u8 r with
  | 0 -> P.No_radius
  | 1 -> P.Absolute (Wire.get_f64 r)
  | 2 ->
    let epsilon = Wire.get_f64 r in
    let maximize = Wire.get_u8 r = 1 in
    P.Theorem { epsilon; maximize }
  | tag -> Wire.error "bad radius-spec tag %d" tag

let encode_part key (p : P.t) =
  let b = Buffer.create 4096 in
  Wire.put_str b key.fingerprint;
  Wire.put_i32 b (List.length key.attrs);
  List.iter (Wire.put_str b) key.attrs;
  Wire.put_i64 b key.tau;
  encode_radius b key.radius;
  (match key.level with
  | None -> Wire.put_u8 b 0
  | Some l ->
    Wire.put_u8 b 1;
    Wire.put_i32 b l);
  Wire.put_i32 b (Array.length p.P.gid_of_row);
  Wire.put_i32 b (Array.length p.P.groups);
  let k = List.length key.attrs in
  Array.iter
    (fun (g : P.group) ->
      Wire.put_i32 b (Array.length g.P.members);
      Array.iter (Wire.put_i32 b) g.P.members;
      if Array.length g.P.centroid <> k then
        invalid_arg "Catalog.store: centroid arity does not match key attrs";
      Array.iter (Wire.put_f64 b) g.P.centroid;
      Wire.put_f64 b g.P.radius)
    p.P.groups;
  Wire.put_str b (Segment.to_string p.P.reps);
  b

(* The decoded skeleton; [reps] stays an undecoded segment image so the
   listing path can skip it. *)
type decoded = {
  dkey : key;
  n_rows : int;
  dgroups : P.group array;
  reps_image : string;
}

let decode_part ~version r =
  let fingerprint = Wire.get_str r in
  let n_attrs = Wire.get_i32 r in
  if n_attrs < 0 then Wire.error "negative attribute count %d" n_attrs;
  let attrs = List.init n_attrs (fun _ -> Wire.get_str r) in
  let tau = Wire.get_i64 r in
  let radius = decode_radius r in
  let level =
    if version < 2 then None
    else
      match Wire.get_u8 r with
      | 0 -> None
      | 1 -> Some (Wire.get_i32 r)
      | tag -> Wire.error "bad level tag %d" tag
  in
  let n_rows = Wire.get_i32 r in
  if n_rows < 0 then Wire.error "negative row count %d" n_rows;
  let n_groups = Wire.get_i32 r in
  if n_groups < 0 then Wire.error "negative group count %d" n_groups;
  let dgroups =
    Array.init n_groups (fun _ ->
        let m = Wire.get_i32 r in
        if m < 0 then Wire.error "negative member count %d" m;
        let members =
          Array.init m (fun _ ->
              let id = Wire.get_i32 r in
              if id < 0 || id >= n_rows then
                Wire.error "member row id %d out of range (%d rows)" id n_rows;
              id)
        in
        let centroid = Array.init n_attrs (fun _ -> Wire.get_f64 r) in
        let radius = Wire.get_f64 r in
        { P.members; centroid; radius })
  in
  let reps_image = Wire.get_str r in
  {
    dkey = { fingerprint; attrs; tau; radius; level };
    n_rows;
    dgroups;
    reps_image;
  }

let to_partition d =
  let reps = Segment.of_string d.reps_image in
  if Relalg.Relation.cardinality reps <> Array.length d.dgroups then
    Wire.error "representative count %d does not match group count %d"
      (Relalg.Relation.cardinality reps)
      (Array.length d.dgroups);
  let gid_of_row = Array.make d.n_rows (-1) in
  Array.iteri
    (fun gid (g : P.group) ->
      Array.iter
        (fun row ->
          if gid_of_row.(row) <> -1 then
            Wire.error "row %d assigned to two groups" row;
          gid_of_row.(row) <- gid)
        g.P.members)
    d.dgroups;
  { P.attrs = d.dkey.attrs; groups = d.dgroups; gid_of_row; reps }

let read_part path =
  let s = Wire.read_file path in
  let version =
    match Wire.peek_version s with
    | Some 1 -> 1
    | _ -> part_version (* current, or let verify report the mismatch *)
  in
  decode_part ~version (Wire.verify ~magic:part_magic ~version s)

let find t key =
  let read path =
    if not (Sys.file_exists path) then None
    else begin
      let d = read_part path in
      if not (key_matches ~stored:d.dkey ~wanted:key) then
        Wire.error "catalog entry %s was stored under a different key (%s)"
          (Filename.basename path) (key_string d.dkey);
      Some (to_partition d)
    end
  in
  match read (part_path t key) with
  | Some p -> Some p
  | None when key.level = None ->
    (* flat entries written before attrs canonicalization live under
       the order-sensitive id *)
    let legacy =
      Filename.concat (partitions_dir t) (legacy_key_id key ^ ".part")
    in
    if legacy = part_path t key then None else read legacy
  | None -> None

let store t key p =
  Wire.write_file (part_path t key) ~magic:part_magic ~version:part_version
    (encode_part key p)

let lookup_or_build t key ~build =
  match find t key with
  | Some p -> (p, `Hit)
  | None ->
    let p = build () in
    store t key p;
    (p, `Built)

let lookup_or_build_hierarchy t ~fingerprint ?(radius = Pkg.Partition.No_radius)
    ?levels ?leaf_tau ~attrs rel =
  let n = Relalg.Relation.cardinality rel in
  let levels =
    match levels with Some l -> max 1 l | None -> Pkg.Hierarchy.default_levels ()
  in
  let leaf_tau =
    match leaf_tau with
    | Some tau -> max 1 tau
    | None -> Pkg.Hierarchy.default_leaf_tau rel
  in
  let taus = Pkg.Hierarchy.plan_taus ~n ~leaf_tau ~levels in
  let key_of l =
    (* only the leaf level carries the radius condition (Hierarchy.build
       applies it nowhere else), so coarser keys must not include it or
       two queries differing only in epsilon would never share levels *)
    let r = if l = levels - 1 then radius else Pkg.Partition.No_radius in
    { fingerprint; attrs; tau = taus.(l); radius = r; level = Some l }
  in
  let cached =
    let rec probe l acc =
      if l < 0 then Some acc
      else
        match find t (key_of l) with
        | Some p -> probe (l - 1) (p :: acc)
        | None -> None
    in
    probe (levels - 1) []
  in
  match cached with
  | Some parts ->
    ({ Pkg.Hierarchy.attrs; levels = Array.of_list parts }, `Hit)
  | None ->
    let h = Pkg.Hierarchy.build ~radius ~levels ~leaf_tau ~attrs rel in
    Array.iteri (fun l p -> store t (key_of l) p) h.Pkg.Hierarchy.levels;
    (h, `Built)

(* ------------------------------------------------------------------ *)
(* Inspection                                                         *)
(* ------------------------------------------------------------------ *)

type entry = {
  id : string;
  entry_key : key;
  groups : int;
  rows : int;
  bytes : int;
  age : float;
}

let entries t =
  let d = partitions_dir t in
  let now = Unix.gettimeofday () in
  Sys.readdir d |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".part")
  |> List.filter_map (fun f ->
         let path = Filename.concat d f in
         match read_part path with
         | dec ->
           let st = Unix.stat path in
           Some
             {
               id = Filename.remove_extension f;
               entry_key = dec.dkey;
               groups = Array.length dec.dgroups;
               rows = dec.n_rows;
               bytes = st.Unix.st_size;
               age = now -. st.Unix.st_mtime;
             }
         | exception (Wire.Error _ | Sys_error _) -> None)
  |> List.sort (fun a b -> compare a.age b.age)
