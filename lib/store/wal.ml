(* Write-ahead log: one checksummed record per APPEND/DELETE batch.

   File layout is a flat sequence of frames

     [ length (i32 LE) | record image ]

   where the record image is a full [Wire] envelope
   (magic "PKGQWAL1" | version | seq (i64) | op tag (u8) | payload |
   checksum), so a torn tail is detected by the same three-layer
   verification every other store file gets: a frame whose length runs
   past EOF, or whose checksum does not match, marks the end of the
   valid prefix.

   All writes go through an unbuffered [Unix] fd opened with O_APPEND:
   a SIGKILL can interrupt the process at any instruction and the
   kernel still has every byte written so far, which is what makes the
   chaos harness's kill points meaningful. *)

let magic = "PKGQWAL1"
let version = 1

type op = Append of Relalg.Relation.t | Delete of int list

type record = { seq : int; op : op }

exception Sync_failed of string

type sync = Always | Never

let sync_env_var = "PKGQ_WAL_SYNC"

let sync_from_env () =
  match Sys.getenv_opt sync_env_var with
  | None -> Always
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "off" | "never" | "0" | "no" -> Never
    | _ -> Always)

type t = {
  fd : Unix.file_descr;
  wal_path : string;
  sync : sync;
  mutable records : int;
  mutable bytes : int;
  mutable last_seq : int;
}

let path t = t.wal_path
let records t = t.records
let bytes t = t.bytes
let last_seq t = t.last_seq
let sync_mode t = t.sync

(* ------------------------------------------------------------------ *)
(* Record codec                                                       *)
(* ------------------------------------------------------------------ *)

let tag_append = 0
let tag_delete = 1

let encode_record ~seq op =
  let b = Buffer.create 256 in
  Wire.put_i64 b seq;
  (match op with
  | Append rel ->
    Wire.put_u8 b tag_append;
    Wire.put_str b (Segment.to_string rel)
  | Delete ids ->
    Wire.put_u8 b tag_delete;
    Wire.put_i32 b (List.length ids);
    List.iter (Wire.put_i32 b) ids);
  Wire.seal ~magic ~version b

let decode_record image =
  let r = Wire.verify ~magic ~version image in
  let seq = Wire.get_i64 r in
  if seq < 1 then Wire.error "bad wal record sequence %d" seq;
  match Wire.get_u8 r with
  | 0 -> { seq; op = Append (Segment.of_string (Wire.get_str r)) }
  | 1 ->
    let n = Wire.get_i32 r in
    if n < 0 then Wire.error "negative wal delete count %d" n;
    { seq; op = Delete (List.init n (fun _ -> Wire.get_i32 r)) }
  | tag -> Wire.error "bad wal op tag %d" tag

(* ------------------------------------------------------------------ *)
(* Replay                                                             *)
(* ------------------------------------------------------------------ *)

type replay = {
  ops : record list;  (** valid records, in write order *)
  valid_bytes : int;  (** length of the intact prefix *)
  torn_bytes : int;  (** bytes past it, discarded *)
  replay_last_seq : int;  (** 0 when the log is empty *)
}

let empty_replay = { ops = []; valid_bytes = 0; torn_bytes = 0; replay_last_seq = 0 }

let replay ?(truncate = false) path =
  if not (Sys.file_exists path) then empty_replay
  else begin
    let s = Wire.read_file path in
    let len = String.length s in
    let ops = ref [] in
    let pos = ref 0 in
    let last = ref 0 in
    let ok = ref true in
    while !ok && !pos + 4 <= len do
      let n = Int32.to_int (String.get_int32_le s !pos) in
      if n <= 0 || !pos + 4 + n > len then ok := false
      else
        match decode_record (String.sub s (!pos + 4) n) with
        | rc ->
          ops := rc :: !ops;
          last := rc.seq;
          pos := !pos + 4 + n
        | exception Wire.Error _ -> ok := false
    done;
    let valid = !pos in
    let torn = len - valid in
    if truncate && torn > 0 then begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.ftruncate fd valid;
          try Unix.fsync fd with Unix.Unix_error _ -> ())
    end;
    { ops = List.rev !ops; valid_bytes = valid; torn_bytes = torn;
      replay_last_seq = !last }
  end

(* ------------------------------------------------------------------ *)
(* Appending                                                          *)
(* ------------------------------------------------------------------ *)

let open_log ?sync path =
  let sync = match sync with Some s -> s | None -> sync_from_env () in
  let rep = replay ~truncate:true path in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  ( { fd; wal_path = path; sync; records = List.length rep.ops;
      bytes = rep.valid_bytes; last_seq = rep.replay_last_seq },
    rep )

let write_all fd b off len =
  let pos = ref off in
  let stop = off + len in
  while !pos < stop do
    pos := !pos + Unix.write fd b !pos (stop - !pos)
  done

let die () =
  (* SIGKILL, not [exit]: at_exit must not run, buffered channels must
     not flush — the point is to model sudden process death. *)
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* unreachable, but keeps the type checker honest *)
  assert false

let append t op =
  let seq = t.last_seq + 1 in
  let image = encode_record ~seq op in
  let len = String.length image in
  let frame = Bytes.create (4 + len) in
  Bytes.set_int32_le frame 0 (Int32.of_int len);
  Bytes.blit_string image 0 frame 4 len;
  (match Pkg.Faults.wal_write_fault () with
  | Some `Torn ->
    (* persist only a prefix of the frame — fsync it so the restarted
       process deterministically finds a torn tail — then die *)
    write_all t.fd frame 0 ((4 + len) / 2);
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    die ()
  | Some `Crash ->
    (* the record is fully durable but the caller never gets to
       acknowledge it: an in-doubt write that replay must apply *)
    write_all t.fd frame 0 (4 + len);
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    die ()
  | None -> ());
  write_all t.fd frame 0 (4 + len);
  let sync_failed msg =
    (* roll the partial record back out of the log so a later crash
       cannot resurrect a write the client was told had failed *)
    (try
       Unix.ftruncate t.fd t.bytes;
       Unix.fsync t.fd
     with Unix.Unix_error _ -> ());
    raise (Sync_failed msg)
  in
  if Pkg.Faults.wal_fsync_fails () then
    sync_failed "injected wal sync failure (wal=fsync:fail)";
  (match t.sync with
  | Always -> (
    try Unix.fsync t.fd
    with Unix.Unix_error (e, _, _) -> sync_failed (Unix.error_message e))
  | Never -> ());
  t.last_seq <- seq;
  t.records <- t.records + 1;
  t.bytes <- t.bytes + 4 + len;
  seq

let reset t =
  Unix.ftruncate t.fd 0;
  (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
  (* [last_seq] survives a reset: sequence numbers are monotone across
     checkpoints, which is what lets recovery skip records the
     checkpoint already covers. *)
  t.records <- 0;
  t.bytes <- 0

let bump_seq t floor = if floor > t.last_seq then t.last_seq <- floor

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
