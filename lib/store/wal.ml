(* Write-ahead log: one checksummed record per APPEND/DELETE batch.

   File layout is a flat sequence of frames

     [ length (i32 LE) | record image ]

   where the record image is a full [Wire] envelope
   (magic "PKGQWAL1" | version | seq (i64) | op tag (u8) | payload |
   checksum), so a torn tail is detected by the same three-layer
   verification every other store file gets: a frame whose length runs
   past EOF, or whose checksum does not match, marks the end of the
   valid prefix.

   All writes go through an unbuffered [Unix] fd opened with O_APPEND:
   a SIGKILL can interrupt the process at any instruction and the
   kernel still has every byte written so far, which is what makes the
   chaos harness's kill points meaningful. *)

let magic = "PKGQWAL1"

(* Version 1 records are [seq | tag | payload]; version 2 inserts a
   membership epoch (i64) between the sequence number and the op tag.
   New records are always written at version 2; replay decodes both, a
   v1 record carrying epoch 0 (the "never fenced" epoch). *)
let version_v1 = 1
let version = 2

type op = Append of Relalg.Relation.t | Delete of int list

type record = { seq : int; epoch : int; op : op }

exception Sync_failed of string

type sync = Always | Never

let sync_env_var = "PKGQ_WAL_SYNC"

let sync_from_env () =
  match Sys.getenv_opt sync_env_var with
  | None -> Always
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "off" | "never" | "0" | "no" -> Never
    | _ -> Always)

type t = {
  fd : Unix.file_descr;
  wal_path : string;
  sync : sync;
  mutable records : int;
  mutable bytes : int;
  mutable last_seq : int;
  mutable last_epoch : int;
}

let path t = t.wal_path
let records t = t.records
let bytes t = t.bytes
let last_seq t = t.last_seq
let last_epoch t = t.last_epoch
let sync_mode t = t.sync

(* ------------------------------------------------------------------ *)
(* Record codec                                                       *)
(* ------------------------------------------------------------------ *)

let tag_append = 0
let tag_delete = 1

let encode_record ~seq ~epoch op =
  let b = Buffer.create 256 in
  Wire.put_i64 b seq;
  Wire.put_i64 b epoch;
  (match op with
  | Append rel ->
    Wire.put_u8 b tag_append;
    Wire.put_str b (Segment.to_string rel)
  | Delete ids ->
    Wire.put_u8 b tag_delete;
    Wire.put_i32 b (List.length ids);
    List.iter (Wire.put_i32 b) ids);
  Wire.seal ~magic ~version b

let decode_record image =
  (* Pick the layout by the envelope's version field before [verify]
     (which demands an exact version): v1 has no epoch, anything else
     goes through the current-version check so an unknown version still
     fails as a typed envelope error. *)
  let v =
    match Wire.peek_version image with Some 1 -> version_v1 | _ -> version
  in
  let r = Wire.verify ~magic ~version:v image in
  let seq = Wire.get_i64 r in
  if seq < 1 then Wire.error "bad wal record sequence %d" seq;
  let epoch = if v = version_v1 then 0 else Wire.get_i64 r in
  if epoch < 0 then Wire.error "negative wal record epoch %d" epoch;
  match Wire.get_u8 r with
  | 0 -> { seq; epoch; op = Append (Segment.of_string (Wire.get_str r)) }
  | 1 ->
    let n = Wire.get_i32 r in
    if n < 0 then Wire.error "negative wal delete count %d" n;
    { seq; epoch; op = Delete (List.init n (fun _ -> Wire.get_i32 r)) }
  | tag -> Wire.error "bad wal op tag %d" tag

(* ------------------------------------------------------------------ *)
(* Replay                                                             *)
(* ------------------------------------------------------------------ *)

type replay = {
  ops : record list;  (** valid records, in write order *)
  valid_bytes : int;  (** length of the intact prefix *)
  torn_bytes : int;  (** bytes past it, discarded *)
  fenced_bytes : int;  (** bytes of an epoch-regressing suffix, discarded *)
  replay_last_seq : int;  (** 0 when the log is empty *)
  replay_last_epoch : int;  (** highest epoch in the valid prefix, 0 if none *)
}

let empty_replay =
  { ops = []; valid_bytes = 0; torn_bytes = 0; fenced_bytes = 0;
    replay_last_seq = 0; replay_last_epoch = 0 }

let replay ?(truncate = false) path =
  if not (Sys.file_exists path) then empty_replay
  else begin
    let s = Wire.read_file path in
    let len = String.length s in
    let ops = ref [] in
    let pos = ref 0 in
    let last = ref 0 in
    let last_epoch = ref 0 in
    let ok = ref true in
    let fenced = ref false in
    while !ok && !pos + 4 <= len do
      let n = Int32.to_int (String.get_int32_le s !pos) in
      if n <= 0 || !pos + 4 + n > len then ok := false
      else
        match decode_record (String.sub s (!pos + 4) n) with
        | rc ->
          (* Epochs are monotone within one log: a record stamped below
             its predecessor's epoch is a fenced suffix (a deposed
             primary kept appending after a newer epoch was granted) —
             everything from here on is discarded, never replayed. *)
          if rc.epoch < !last_epoch then begin
            fenced := true;
            ok := false
          end
          else begin
            ops := rc :: !ops;
            last := rc.seq;
            last_epoch := rc.epoch;
            pos := !pos + 4 + n
          end
        | exception Wire.Error _ -> ok := false
    done;
    let valid = !pos in
    let cut = len - valid in
    let torn = if !fenced then 0 else cut in
    let fenced_bytes = if !fenced then cut else 0 in
    if truncate && cut > 0 then begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.ftruncate fd valid;
          try Unix.fsync fd with Unix.Unix_error _ -> ())
    end;
    { ops = List.rev !ops; valid_bytes = valid; torn_bytes = torn;
      fenced_bytes; replay_last_seq = !last; replay_last_epoch = !last_epoch }
  end

(* ------------------------------------------------------------------ *)
(* Appending                                                          *)
(* ------------------------------------------------------------------ *)

let open_log ?sync path =
  let sync = match sync with Some s -> s | None -> sync_from_env () in
  let rep = replay ~truncate:true path in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  ( { fd; wal_path = path; sync; records = List.length rep.ops;
      bytes = rep.valid_bytes; last_seq = rep.replay_last_seq;
      last_epoch = rep.replay_last_epoch },
    rep )

let write_all fd b off len =
  let pos = ref off in
  let stop = off + len in
  while !pos < stop do
    pos := !pos + Unix.write fd b !pos (stop - !pos)
  done

let die () =
  (* SIGKILL, not [exit]: at_exit must not run, buffered channels must
     not flush — the point is to model sudden process death. *)
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* unreachable, but keeps the type checker honest *)
  assert false

let append ?epoch t op =
  let seq = t.last_seq + 1 in
  (* The log's epochs never regress: a caller still stamping an older
     epoch (a deposed primary) writes at the log's high-water mark
     rather than poisoning the monotone prefix — the fencing refusal
     belongs to the server's write gate, which runs before this. *)
  let epoch = max (Option.value epoch ~default:0) t.last_epoch in
  let image = encode_record ~seq ~epoch op in
  let len = String.length image in
  let frame = Bytes.create (4 + len) in
  Bytes.set_int32_le frame 0 (Int32.of_int len);
  Bytes.blit_string image 0 frame 4 len;
  (match Pkg.Faults.wal_write_fault () with
  | Some `Torn ->
    (* persist only a prefix of the frame — fsync it so the restarted
       process deterministically finds a torn tail — then die *)
    write_all t.fd frame 0 ((4 + len) / 2);
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    die ()
  | Some `Crash ->
    (* the record is fully durable but the caller never gets to
       acknowledge it: an in-doubt write that replay must apply *)
    write_all t.fd frame 0 (4 + len);
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    die ()
  | None -> ());
  write_all t.fd frame 0 (4 + len);
  let sync_failed msg =
    (* roll the partial record back out of the log so a later crash
       cannot resurrect a write the client was told had failed *)
    (try
       Unix.ftruncate t.fd t.bytes;
       Unix.fsync t.fd
     with Unix.Unix_error _ -> ());
    raise (Sync_failed msg)
  in
  if Pkg.Faults.wal_fsync_fails () then
    sync_failed "injected wal sync failure (wal=fsync:fail)";
  (match t.sync with
  | Always -> (
    try Unix.fsync t.fd
    with Unix.Unix_error (e, _, _) -> sync_failed (Unix.error_message e))
  | Never -> ());
  t.last_seq <- seq;
  t.last_epoch <- epoch;
  t.records <- t.records + 1;
  t.bytes <- t.bytes + 4 + len;
  seq

let reset t =
  Unix.ftruncate t.fd 0;
  (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
  (* [last_seq] survives a reset: sequence numbers are monotone across
     checkpoints, which is what lets recovery skip records the
     checkpoint already covers. *)
  t.records <- 0;
  t.bytes <- 0

let bump_seq t floor = if floor > t.last_seq then t.last_seq <- floor

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
