(** Write-ahead log for the served table.

    One checksummed record per [APPEND]/[DELETE] batch. The file is a
    flat sequence of frames [length (i32 LE) | record image], each
    record image a full {!Wire} envelope (magic ["PKGQWAL1"], version,
    monotone sequence number, op tag, payload, checksum). A torn tail —
    a frame cut short by a crash, or one whose checksum fails — marks
    the end of the valid prefix; {!replay} reports it and can truncate
    it away.

    Writes bypass [Stdlib] buffering (unbuffered [Unix] fd, [O_APPEND])
    so that a [SIGKILL] at any instruction leaves every previously
    written byte visible to the next process — the property the chaos
    harness's kill points rely on.

    Fault hooks ({!Pkg.Faults.wal_write_fault},
    {!Pkg.Faults.wal_fsync_fails}) are consulted on every {!append}:
    [wal=torn:K] persists half of the K-th frame and kills the process,
    [wal=crash:K] makes the K-th record durable and then kills the
    process before the caller can acknowledge, and [wal=fsync:fail]
    makes every sync report failure (the record is rolled back out of
    the log before {!Sync_failed} is raised). *)

type op = Append of Relalg.Relation.t | Delete of int list

(** [epoch] is the membership epoch the record was written under (0 for
    records predating the fencing layer — including every record of a
    version-1 log). Within one log, epochs never decrease; {!replay}
    enforces this and discards a regressing (fenced) suffix. *)
type record = { seq : int; epoch : int; op : op }

(** [encode_record ~seq ~epoch op] — the current (version-2) record
    image: a {!Wire} envelope over [seq | epoch | tag | payload].
    Exposed for the format round-trip tests. *)
val encode_record : seq:int -> epoch:int -> op -> string

(** Decode a record image of either version: v2 as written by
    {!encode_record}, v1 (no epoch field) as epoch 0.
    @raise Wire.Error on a corrupt image or unknown version. *)
val decode_record : string -> record

(** A WAL sync failed: the record was rolled back (truncated out of the
    log); the write must be neither applied nor acknowledged. *)
exception Sync_failed of string

(** [Always] — fsync after every record, before the caller may
    acknowledge (the durable default). [Never] — leave flushing to the
    kernel: survives process death (bytes are in the page cache) but
    not power loss; for benchmarking the sync overhead. *)
type sync = Always | Never

(** [PKGQ_WAL_SYNC]: ["off"|"never"|"0"|"no"] selects {!Never};
    anything else (or unset) selects {!Always}. *)
val sync_env_var : string

val sync_from_env : unit -> sync

type t

(** What {!replay} found in an existing log file. *)
type replay = {
  ops : record list;  (** valid records, in write order *)
  valid_bytes : int;  (** length of the intact prefix *)
  torn_bytes : int;  (** bytes past it, discarded *)
  fenced_bytes : int;
      (** bytes of a suffix whose records regress in epoch — writes a
          deposed primary kept appending after a newer epoch existed —
          discarded exactly like a torn tail, but counted apart *)
  replay_last_seq : int;  (** 0 when the log is empty *)
  replay_last_epoch : int;  (** highest epoch in the valid prefix, 0 if none *)
}

(** [replay ?truncate path] decodes the valid prefix of the log at
    [path] (a missing file is an empty log). With [~truncate:true] the
    torn tail, if any, is cut off on disk so the next appender starts
    from a clean end. Record-level corruption is contained — the scan
    stops at the first bad frame — but an unreadable file raises
    [Sys_error]. *)
val replay : ?truncate:bool -> string -> replay

(** [open_log ?sync path] replays (truncating any torn tail), then
    opens the log for appending positioned at the end of the valid
    prefix. [sync] defaults to {!sync_from_env}. *)
val open_log : ?sync:sync -> string -> t * replay

(** [append ?epoch t op] encodes, writes and (under {!Always}) fsyncs
    one record, returning its sequence number. [epoch] (default 0)
    stamps the record with the writer's membership epoch; the stamp is
    clamped up to the log's running maximum so one log's epochs never
    regress. Only after [append] returns may the caller apply the op in
    memory and acknowledge it.
    @raise Sync_failed when the record could not be made durable; the
    log is left exactly as before the call. *)
val append : ?epoch:int -> t -> op -> int

(** [reset t] truncates the log to empty — the checkpoint has absorbed
    its records. Sequence numbers keep counting from {!last_seq}, which
    is what lets recovery skip records an earlier checkpoint already
    covers. *)
val reset : t -> unit

(** [bump_seq t floor] raises {!last_seq} to at least [floor]. Recovery
    calls this with the checkpoint's sequence number after opening a
    truncated (empty) log, so new records keep numbering above the
    records the checkpoint absorbed. *)
val bump_seq : t -> int -> unit

val close : t -> unit

val path : t -> string

(** Records appended since open/reset (checkpoint trigger input). *)
val records : t -> int

(** Bytes in the valid log (checkpoint trigger input). *)
val bytes : t -> int

(** Sequence number of the newest record ever written, 0 if none. *)
val last_seq : t -> int

(** Highest epoch ever written to (or replayed from) this log. *)
val last_epoch : t -> int

val sync_mode : t -> sync
