(* WAL shipping: the read side of primary → replica replication.

   A cursor remembers how far a replica has applied its primary's log;
   [pending] re-reads the file's valid prefix and returns what is still
   to ship. Reading the file directly (rather than asking the primary)
   is the point: promotion must work when the primary is dead, and the
   coordinator runs on the same filesystem as its local fleet. *)

type cursor = { path : string; mutable seq : int }

let make ?(since = 0) path = { path; seq = since }

let position c = c.seq

let pending c =
  let replay = Wal.replay c.path in
  List.filter (fun (r : Wal.record) -> r.Wal.seq > c.seq) replay.Wal.ops

let advance c seq = if seq > c.seq then c.seq <- seq

let last_seq path = (Wal.replay path).Wal.replay_last_seq
