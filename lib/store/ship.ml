(* WAL shipping: the read side of primary → replica replication.

   A cursor remembers how far a replica has applied its primary's log;
   [pending] re-reads the file's valid prefix and returns what is still
   to ship. Reading the file directly (rather than asking the primary)
   is the point: promotion must work when the primary is dead, and the
   coordinator runs on the same filesystem as its local fleet.

   The fence epoch is the shipping side of split-brain protection: once
   a replica is promoted at epoch E, the coordinator sets the cursor's
   fence to E, and any record a resumed zombie primary appends at an
   older epoch is dropped (and counted) rather than shipped into the
   promoted replica. *)

type cursor = {
  path : string;
  mutable seq : int;
  mutable fence : int;
  mutable fenced : int;
}

let make ?(since = 0) path = { path; seq = since; fence = 0; fenced = 0 }

let position c = c.seq

let set_fence c epoch = if epoch > c.fence then c.fence <- epoch

let fence c = c.fence

let fenced_count c = c.fenced

let pending c =
  let replay = Wal.replay c.path in
  List.filter
    (fun (r : Wal.record) ->
      if r.Wal.seq <= c.seq then false
      else if r.Wal.epoch < c.fence then begin
        (* a record from before the promotion epoch appearing past the
           shipped prefix can only be a deposed primary's write: never
           ship it, but advance past it so lag accounting stays sane *)
        c.fenced <- c.fenced + 1;
        if r.Wal.seq > c.seq then c.seq <- r.Wal.seq;
        false
      end
      else true)
    replay.Wal.ops

let advance c seq = if seq > c.seq then c.seq <- seq

let last_seq path = (Wal.replay path).Wal.replay_last_seq
