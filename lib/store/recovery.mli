(** Startup recovery: checkpoint load + WAL replay.

    A durability directory holds [checkpoint.seg] (envelope
    ["PKGQCKPT"]: the sequence number it covers plus a full table
    segment) and [wal.log] ({!Wal} records past that sequence number).
    {!recover} rebuilds the table to exactly the last acknowledged
    state: load the checkpoint (or the caller's base relation when
    there is none), replay the WAL's valid prefix skipping records the
    checkpoint already covers, truncate any torn tail, and return the
    open log ready for appending.

    {!checkpoint} publishes a fresh checkpoint atomically (tempfile +
    fsync + rename) and only then truncates the log. A crash between
    those two steps is benign: replay's sequence-number guard skips the
    still-logged records the new checkpoint absorbed, so nothing is
    applied twice. Partition catalog entries are not part of recovery
    state — they are keyed by table fingerprint and rebuilt (or
    re-fetched from {!Catalog}) on demand, so the recovered relation's
    fingerprint determines exactly which entries hit. *)

val wal_file : string

val checkpoint_file : string

val wal_path : string -> string

val checkpoint_path : string -> string

type stats = {
  checkpoint_seq : int;
  checkpoint_rows : int option;  (** [None]: no checkpoint, base used *)
  records_replayed : int;
  records_skipped : int;  (** <= checkpoint seq (crash mid-protocol) *)
  rows_appended : int;
  rows_deleted : int;
  torn_bytes : int;  (** truncated from the tail *)
  fenced_bytes : int;
      (** an epoch-regressing suffix truncated at open — a deposed
          primary's post-promotion writes, asserted away by replay's
          epoch-monotonicity check, never applied *)
  last_seq : int;
  last_epoch : int;  (** highest epoch in the replayed log, 0 if none *)
  wall : float;
}

val pp_stats : Format.formatter -> stats -> unit

(** [recover ?sync ~dir ~base ()] rebuilds the table from [dir]
    (created if missing), falling back to [base ()] when no checkpoint
    exists. Applies the same append/delete semantics as the live
    server, so the recovered relation's segment fingerprint equals the
    acknowledged state's.
    @raise Wire.Error on a corrupt checkpoint or a record that does not
    fit the table (WAL torn tails are handled, not raised). *)
val recover :
  ?sync:Wal.sync ->
  dir:string ->
  base:(unit -> Relalg.Relation.t) ->
  unit ->
  Relalg.Relation.t * Wal.t * stats

(** [checkpoint ~dir wal rel] atomically publishes [rel] as the new
    checkpoint covering everything up to [Wal.last_seq wal], then
    truncates the log. *)
val checkpoint : dir:string -> Wal.t -> Relalg.Relation.t -> unit

(** [apply rel op] — one WAL op, the server's semantics: append
    concatenates rows in order; delete drops ids and compacts.
    @raise Wire.Error on schema mismatch or out-of-range id. *)
val apply : Relalg.Relation.t -> Wal.op -> Relalg.Relation.t
