exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Hashing                                                            *)
(* ------------------------------------------------------------------ *)

(* FNV-1a mixing, but consuming 8 bytes per step so checksumming a
   multi-megabyte segment stays far below the cost of decoding it. *)
let fnv_prime = 0x100000001B3L
let fnv_basis = 0xCBF29CE484222325L

let hash64_sub s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Wire.hash64_sub";
  let h = ref fnv_basis in
  let i = ref off in
  let stop = off + len in
  while !i + 8 <= stop do
    h := Int64.mul (Int64.logxor !h (String.get_int64_le s !i)) fnv_prime;
    i := !i + 8
  done;
  while !i < stop do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get s !i))))
        fnv_prime;
    incr i
  done;
  !h

let hash64 s = hash64_sub s 0 (String.length s)

let hex64 h = Printf.sprintf "%016Lx" h

(* ------------------------------------------------------------------ *)
(* Writing                                                            *)
(* ------------------------------------------------------------------ *)

let put_u8 b v = Buffer.add_uint8 b v
let put_i32 b v = Buffer.add_int32_le b (Int32.of_int v)
let put_i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let put_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let put_str b s =
  put_i32 b (String.length s);
  Buffer.add_string b s

let seal ~magic ~version body =
  if String.length magic <> 8 then invalid_arg "Wire.seal: magic must be 8 bytes";
  let out = Buffer.create (Buffer.length body + 24) in
  Buffer.add_string out magic;
  put_i32 out version;
  Buffer.add_buffer out body;
  let sum = hash64 (Buffer.contents out) in
  Buffer.add_int64_le out sum;
  Buffer.contents out

(* Crash-safe publish: write the full image to a process-unique temp
   name, fsync it so the content is on disk before the name is, then
   rename over the target (atomic on POSIX) and fsync the directory so
   the rename itself survives power loss. A crash at any point leaves
   either the old file or the new one — never a torn target — and at
   worst a stale [.tmp.<pid>] that [Catalog.open_dir] sweeps. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let write_string_file path image =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length image in
      let written = Unix.write_substring fd image 0 n in
      if written <> n then error "short write to %s (%d/%d bytes)" tmp written n;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let write_file path ~magic ~version body =
  write_string_file path (seal ~magic ~version body)

(* ------------------------------------------------------------------ *)
(* Reading                                                            *)
(* ------------------------------------------------------------------ *)

type reader = { s : string; mutable pos : int; limit : int }

let need r n =
  if n < 0 || r.pos + n > r.limit then error "truncated store file body"

let get_u8 r =
  need r 1;
  let v = Char.code (String.unsafe_get r.s r.pos) in
  r.pos <- r.pos + 1;
  v

let get_i32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.s r.pos) in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let get_f64 r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let get_raw r n =
  need r n;
  let v = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  v

let get_str r =
  let n = get_i32 r in
  get_raw r n

(* The envelope checksum has already vouched for the bytes by the time
   a body decoder runs, so the bulk readers bounds-check the whole span
   once and then load with the unchecked primitives. *)
external unsafe_get64 : string -> int -> int64 = "%caml_string_get64u"
external unsafe_get32 : string -> int -> int32 = "%caml_string_get32u"

let get_i64_array r n =
  need r (8 * n);
  let a = Array.make n 0 in
  let base = r.pos in
  for k = 0 to n - 1 do
    Array.unsafe_set a k (Int64.to_int (unsafe_get64 r.s (base + (8 * k))))
  done;
  r.pos <- base + (8 * n);
  a

let get_i32_array r n =
  need r (4 * n);
  let a = Array.make n 0 in
  let base = r.pos in
  for k = 0 to n - 1 do
    Array.unsafe_set a k (Int32.to_int (unsafe_get32 r.s (base + (4 * k))))
  done;
  r.pos <- base + (4 * n);
  a

let get_f64_into r a =
  let n = Array.length a in
  need r (8 * n);
  let base = r.pos in
  for k = 0 to n - 1 do
    Array.unsafe_set a k
      (Int64.float_of_bits (unsafe_get64 r.s (base + (8 * k))))
  done;
  r.pos <- base + (8 * n)

let peek_version s =
  if String.length s < 8 + 4 then None
  else Some (Int32.to_int (String.get_int32_le s 8))

let verify ~magic ~version s =
  if String.length magic <> 8 then
    invalid_arg "Wire.verify: magic must be 8 bytes";
  (match Pkg.Faults.store_fault () with
  | Some Pkg.Faults.Store_read ->
    error "injected store fault: read aborted (store=read:fail)"
  | Some Pkg.Faults.Store_checksum | None -> ());
  let len = String.length s in
  if len < 8 + 4 + 8 then error "truncated store file (%d bytes)" len;
  if not (String.equal (String.sub s 0 8) magic) then
    error "bad magic %S (expected %S)" (String.sub s 0 8) magic;
  let v = Int32.to_int (String.get_int32_le s 8) in
  if v <> version then
    error "unsupported store format version %d (expected %d)" v version;
  let stored = String.get_int64_le s (len - 8) in
  let computed = hash64_sub s 0 (len - 8) in
  let computed =
    (* the checksum fault corrupts the computed side, so the mismatch
       flows through the real verification path *)
    match Pkg.Faults.store_fault () with
    | Some Pkg.Faults.Store_checksum -> Int64.logxor computed 1L
    | _ -> computed
  in
  if not (Int64.equal stored computed) then
    error "checksum mismatch (stored %s, computed %s)" (hex64 stored)
      (hex64 computed);
  { s; pos = 12; limit = len - 8 }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
