(** Binary columnar relation segments — the store's on-disk table
    format, replacing CSV re-parse on the hot path.

    Layout (little-endian throughout):

    {v
    "PKGQSEG1" magic | version i32 | body | checksum i64
    body:
      n_attrs i32, n_rows i32
      per attribute: name (i32 len + bytes), type tag u8
                     (0 int, 1 float, 2 str, 3 bool)
      per attribute, in schema order:
        null-map flag u8; when 1, n_rows bytes (1 = NULL)
        int   -> n_rows x i64
        float -> n_rows x f64 bit image (exact round-trip)
        bool  -> n_rows x u8
        str   -> dictionary (i32 count, then len-prefixed entries)
                 followed by n_rows x i32 dictionary indices (-1 = NULL)
    v}

    Numeric columns load {e directly} into the relation's
    {!Relalg.Column} cache ({!Relalg.Relation.of_array_columns}): the
    unboxed arrays decoded from disk become the cached columns, so the
    first query after a load pays no extraction pass.

    Corruption (bad magic, version mismatch, bad checksum, truncation)
    raises the typed {!Error}, never a backtrace. *)

exception Error of string

val magic : string
val version : int

(** [write path rel] persists atomically (temp file + rename). *)
val write : string -> Relalg.Relation.t -> unit

(** @raise Error on corrupt content, [Sys_error] on IO failure. *)
val read : string -> Relalg.Relation.t

(** Full file image / its inverse, for tests and embedding. *)
val to_string : Relalg.Relation.t -> string

val of_string : string -> Relalg.Relation.t

(** {1 Fingerprints}

    Content fingerprints key the partition catalog and the table
    cache: same bytes, same fingerprint, across processes. *)

(** Fingerprint of an in-memory relation (hash of its encoded body). *)
val fingerprint : Relalg.Relation.t -> string

(** Fingerprint of a file's raw bytes (no parse — cheap even for CSV).
    Raises [Sys_error] on IO failure. *)
val fingerprint_file : string -> string
