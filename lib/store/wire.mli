(** Byte-level encoding shared by the store's file formats.

    Every store file is [magic (8 bytes) | version (i32 LE) | body |
    checksum (i64 LE)], where the checksum is a word-wise FNV-1a-style
    hash of everything before it. {!verify} checks the three envelope
    layers in order — magic, version, checksum — so corruption
    surfaces as a typed {!Error} naming the failed layer, never as a
    backtrace from the body decoder.

    The fault-injection hooks of {!Pkg.Faults} ([store=read:fail],
    [store=checksum:fail]) are consulted by {!verify}, making the
    corrupt-store paths deterministically testable on intact files. *)

(** Typed corruption/IO-shape error. Carries a human-readable message;
    the binaries map it to the data-error exit code (3). *)
exception Error of string

val error : ('a, unit, string, 'b) format4 -> 'a

(** {1 Hashing} *)

(** Word-wise 64-bit content hash (8 bytes per step, FNV-1a mixing). *)
val hash64_sub : string -> int -> int -> int64

val hash64 : string -> int64

(** Lower-case 16-digit hex image of a hash. *)
val hex64 : int64 -> string

(** {1 Writing} *)

val put_u8 : Buffer.t -> int -> unit
val put_i32 : Buffer.t -> int -> unit
val put_i64 : Buffer.t -> int -> unit
val put_f64 : Buffer.t -> float -> unit

(** Length-prefixed (i32) string. *)
val put_str : Buffer.t -> string -> unit

(** [seal ~magic ~version body] is the full file image: envelope
    header, [body], trailing checksum. [magic] must be 8 bytes. *)
val seal : magic:string -> version:int -> Buffer.t -> string

(** [write_file path ~magic ~version body] seals and publishes the file
    crash-safely: the image goes to a process-unique [.tmp.<pid>]
    sibling, is fsync'd, renamed over [path] (atomic on POSIX), and the
    parent directory is fsync'd so the rename survives power loss. A
    crash leaves either the old content or the new — never a torn
    file. *)
val write_file : string -> magic:string -> version:int -> Buffer.t -> unit

(** [write_string_file path image] publishes an already-sealed image
    with the same crash-safe temp+fsync+rename protocol. *)
val write_string_file : string -> string -> unit

(** {1 Reading} *)

type reader

(** [verify ~magic ~version s] checks the envelope of a full file image
    and returns a reader positioned at the body.
    @raise Error on bad magic, version mismatch, bad checksum, or
    truncation (and under an installed [store=...:fail] fault). *)
val verify : magic:string -> version:int -> string -> reader

(** [peek_version s] — the envelope's version field, read without any
    verification ([None] when [s] is too short to carry one). Lets a
    multi-version reader pick its decoder before calling {!verify} with
    the matching version. *)
val peek_version : string -> int option

(** Raises [Sys_error] on IO failure. *)
val read_file : string -> string

val get_u8 : reader -> int
val get_i32 : reader -> int
val get_i64 : reader -> int
val get_f64 : reader -> float
val get_str : reader -> string

(** [get_raw r n] — the next [n] bytes, verbatim. *)
val get_raw : reader -> int -> string

(** {2 Bulk reads}

    One bounds check for the whole span, then raw fixed-width loads —
    the segment decoder's per-column hot path. *)

val get_i64_array : reader -> int -> int array
val get_i32_array : reader -> int -> int array

(** [get_f64_into r a] fills all of [a] from the next
    [8 * Array.length a] bytes. *)
val get_f64_into : reader -> float array -> unit
