(** Incremental partition maintenance.

    The paper treats partitioning as offline and amortized; this module
    keeps a stored partitioning usable as the table evolves, without
    repartitioning from scratch. Updates are local:

    - {b Append}: each new row joins the group with the nearest
      centroid (Chebyshev distance over the partitioning attributes,
      matching the partitioner's radius metric). Only touched groups
      recompute their centroid, radius and representative; a touched
      group that now violates [tau] or the radius spec is re-split
      locally with the same quad-tree recursion {!Pkg.Partition.create}
      uses ({!Pkg.Partition.split}) — the rest of the partitioning is
      untouched, representative rows of untouched groups are reused
      as-is.

    - {b Delete}: rows are removed and groups shrink in place. Row ids
      are compacted (the relation is rebuilt without the dead rows), so
      member sets are remapped everywhere, but centroids, radii and
      representatives are recomputed only for groups that lost members.
      Shrinking can only reduce a group's radius and size, so deletes
      never trigger a re-split. Emptied groups are dropped.

    Both operations return the updated relation, the updated
    partitioning (valid for that relation), and {!stats} describing how
    local the update was. *)

type stats = {
  rows_appended : int;
  rows_deleted : int;
  groups_touched : int;  (** groups whose member set changed *)
  groups_resplit : int;  (** touched groups that overflowed and re-split *)
  groups_before : int;
  groups_after : int;
}

val pp_stats : Format.formatter -> stats -> unit

(** [append ?max_fanout_dims ~tau ~radius p rel extra] appends the rows
    of [extra] to [rel] (they become row ids [n..n+m-1]) and updates
    [p] accordingly. [tau], [radius] and [max_fanout_dims] must be the
    parameters the partitioning was built with — they bound the local
    re-splits.

    @raise Invalid_argument when the schemas of [rel] and [extra]
    differ, or when [p] does not cover [rel]. *)
val append :
  ?max_fanout_dims:int ->
  tau:int ->
  radius:Pkg.Partition.radius_spec ->
  Pkg.Partition.t ->
  Relalg.Relation.t ->
  Relalg.Relation.t ->
  Relalg.Relation.t * Pkg.Partition.t * stats

(** [delete p rel dead] removes the row ids in [dead] (duplicates
    allowed) from [rel], compacting the remaining rows in order.

    @raise Invalid_argument on an out-of-range id, or when [p] does not
    cover [rel]. *)
val delete :
  Pkg.Partition.t ->
  Relalg.Relation.t ->
  int array ->
  Relalg.Relation.t * Pkg.Partition.t * stats
