module P = Pkg.Partition
module R = Relalg.Relation

type stats = {
  rows_appended : int;
  rows_deleted : int;
  groups_touched : int;
  groups_resplit : int;
  groups_before : int;
  groups_after : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "+%d rows, -%d rows: %d/%d groups touched, %d re-split, %d -> %d groups"
    s.rows_appended s.rows_deleted s.groups_touched s.groups_before
    s.groups_resplit s.groups_before s.groups_after

let check_cover (p : P.t) rel =
  if Array.length p.P.gid_of_row <> R.cardinality rel then
    invalid_arg
      (Printf.sprintf
         "Maintain: partition covers %d rows but the relation has %d"
         (Array.length p.P.gid_of_row) (R.cardinality rel))

let rebuild_gid_of_row n (groups : P.group array) =
  let gid_of_row = Array.make n (-1) in
  Array.iteri
    (fun gid (g : P.group) ->
      Array.iter (fun row -> gid_of_row.(row) <- gid) g.P.members)
    groups;
  gid_of_row

(* Chebyshev distance to a centroid — the same metric as the group
   radius (Definition 2), so nearest-centroid assignment keeps the
   radius growth of the receiving group minimal. *)
let chebyshev cols centroid row =
  let d = ref 0. in
  Array.iteri
    (fun dim col ->
      let dx = Float.abs (col.(row) -. centroid.(dim)) in
      if dx > !d then d := dx)
    cols;
  !d

let nearest_gid (groups : P.group array) cols row =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun gid (g : P.group) ->
      let d = chebyshev cols g.P.centroid row in
      if d < !best_d then begin
        best_d := d;
        best := gid
      end)
    groups;
  !best

let append ?max_fanout_dims ~tau ~radius (p : P.t) rel extra =
  check_cover p rel;
  if not (Relalg.Schema.equal (R.schema rel) (R.schema extra)) then
    invalid_arg "Maintain.append: schema mismatch between table and batch";
  let n = R.cardinality rel and m = R.cardinality extra in
  let groups_before = Array.length p.P.groups in
  if m = 0 then
    ( rel,
      p,
      {
        rows_appended = 0;
        rows_deleted = 0;
        groups_touched = 0;
        groups_resplit = 0;
        groups_before;
        groups_after = groups_before;
      } )
  else begin
    let rows =
      Array.init (n + m) (fun i ->
          if i < n then R.row rel i else R.row extra (i - n))
    in
    let combined = R.of_array (R.schema rel) rows in
    if groups_before = 0 then begin
      (* Nothing to maintain locally — the partitioning is empty, so
         this is the initial build. *)
      let p' = P.create ~radius ?max_fanout_dims ~tau ~attrs:p.P.attrs combined in
      ( combined,
        p',
        {
          rows_appended = m;
          rows_deleted = 0;
          groups_touched = 0;
          groups_resplit = 0;
          groups_before;
          groups_after = P.num_groups p';
        } )
    end
    else begin
      let cols = P.numeric_columns combined p.P.attrs in
      (* Route each new row to the nearest existing centroid. *)
      let incoming = Array.make groups_before [] in
      for row = n + m - 1 downto n do
        let gid = nearest_gid p.P.groups cols row in
        incoming.(gid) <- row :: incoming.(gid)
      done;
      let groups_touched = ref 0 and groups_resplit = ref 0 in
      let out_groups = ref [] and out_reps = ref [] in
      Array.iteri
        (fun gid (g : P.group) ->
          match incoming.(gid) with
          | [] ->
            (* Untouched: group and representative row carried over. *)
            out_groups := g :: !out_groups;
            out_reps := R.row p.P.reps gid :: !out_reps
          | fresh ->
            incr groups_touched;
            (* New ids all exceed the old ones, so appending keeps the
               member list increasing. *)
            let members = Array.append g.P.members (Array.of_list fresh) in
            let centroid, r = P.centroid_radius cols members in
            if
              Array.length members <= tau
              && P.radius_ok radius ~centroid ~radius:r
            then begin
              out_groups := { P.members; centroid; radius = r } :: !out_groups;
              out_reps := P.rep_row combined members :: !out_reps
            end
            else begin
              (* Overflow: re-split only this group's subtree. *)
              incr groups_resplit;
              List.iter
                (fun members ->
                  let centroid, r = P.centroid_radius cols members in
                  out_groups :=
                    { P.members; centroid; radius = r } :: !out_groups;
                  out_reps := P.rep_row combined members :: !out_reps)
                (P.split ?max_fanout_dims ~tau ~radius cols members)
            end)
        p.P.groups;
      let groups = Array.of_list (List.rev !out_groups) in
      let reps = R.of_array (R.schema rel) (Array.of_list (List.rev !out_reps)) in
      let p' =
        {
          P.attrs = p.P.attrs;
          groups;
          gid_of_row = rebuild_gid_of_row (n + m) groups;
          reps;
        }
      in
      ( combined,
        p',
        {
          rows_appended = m;
          rows_deleted = 0;
          groups_touched = !groups_touched;
          groups_resplit = !groups_resplit;
          groups_before;
          groups_after = Array.length groups;
        } )
    end
  end

let delete (p : P.t) rel dead =
  check_cover p rel;
  let n = R.cardinality rel in
  let is_dead = Array.make n false in
  Array.iter
    (fun id ->
      if id < 0 || id >= n then
        invalid_arg
          (Printf.sprintf "Maintain.delete: row id %d out of range (%d rows)"
             id n);
      is_dead.(id) <- true)
    dead;
  let groups_before = Array.length p.P.groups in
  (* Compact the survivors in order; old -> new id map. *)
  let remap = Array.make n (-1) in
  let keep = ref [] and kept = ref 0 in
  for i = n - 1 downto 0 do
    if not is_dead.(i) then keep := i :: !keep
  done;
  List.iter
    (fun i ->
      remap.(i) <- !kept;
      incr kept)
    !keep;
  let rows_deleted = n - !kept in
  let rel' = R.take rel (Array.of_list !keep) in
  let cols = lazy (P.numeric_columns rel' p.P.attrs) in
  let groups_touched = ref 0 in
  let out_groups = ref [] and out_reps = ref [] in
  Array.iteri
    (fun gid (g : P.group) ->
      let members =
        Array.of_list
          (List.filter_map
             (fun id -> if remap.(id) >= 0 then Some remap.(id) else None)
             (Array.to_list g.P.members))
      in
      let lost = Array.length members < Array.length g.P.members in
      if lost && Array.length g.P.members > 0 then incr groups_touched;
      if Array.length members > 0 then
        if lost then begin
          (* Shrinking only reduces size and radius — recompute, never
             re-split. *)
          let centroid, r = P.centroid_radius (Lazy.force cols) members in
          out_groups := { P.members; centroid; radius = r } :: !out_groups;
          out_reps := P.rep_row rel' members :: !out_reps
        end
        else begin
          (* Member ids shifted but the tuples did not: geometry and
             representative carry over. *)
          out_groups :=
            { P.members; centroid = g.P.centroid; radius = g.P.radius }
            :: !out_groups;
          out_reps := R.row p.P.reps gid :: !out_reps
        end)
    p.P.groups;
  let groups = Array.of_list (List.rev !out_groups) in
  let reps = R.of_array (R.schema rel) (Array.of_list (List.rev !out_reps)) in
  let p' =
    {
      P.attrs = p.P.attrs;
      groups;
      gid_of_row = rebuild_gid_of_row !kept groups;
      reps;
    }
  in
  ( rel',
    p',
    {
      rows_appended = 0;
      rows_deleted;
      groups_touched = !groups_touched;
      groups_resplit = 0;
      groups_before;
      groups_after = Array.length groups;
    } )
