(** The store directory: a segment cache for base tables and a
    persistent catalog of partitionings.

    The paper's SketchRefine numbers rest on partitioning being an
    offline, amortized step (Section 4.1: once per table and attribute
    set). This module makes that true across processes: partitionings
    are persisted keyed by {e what they were computed from} — table
    fingerprint, attribute set, tau, radius spec — and
    {!lookup_or_build} returns the stored one when the key matches,
    performing zero partitioning work on the warm path.

    Layout under the store root (from [--store] or [$PKGQ_STORE_DIR];
    default [.pkgq-store]):

    {v
    <root>/tables/<fingerprint>.seg   binary segments of imported tables
    <root>/partitions/<key-id>.part   persisted partitionings
    v}

    A partition file is [PKGQPART | version | body | checksum] where
    the body stores the key (for listing and validation), the member
    id sets, centroids and radii of every group, and the
    representative relation as an embedded {!Segment} — so loading
    rebuilds {!Pkg.Partition.t} without recomputing anything.

    Corrupt files raise {!Segment.Error}; missing files are misses. *)

type t

val env_var : string

(** [".pkgq-store"] *)
val default_dir : string

(** [open_dir dir] creates [dir] (and its subdirectories) as needed. *)
val open_dir : string -> t

(** [Some (open_dir $PKGQ_STORE_DIR)] when the variable is set. *)
val from_env : unit -> t option

val dir : t -> string

(** {1 Table cache} *)

(** [load_table t path] returns the relation at [path] and its content
    fingerprint. A [.seg] path is read directly. Any other path is
    treated as CSV keyed by its raw-byte fingerprint: on a hit the
    cached binary segment is loaded (no CSV parse); on a miss the CSV
    is parsed and the segment written for next time.
    @raise Segment.Error on a corrupt segment,
    [Relalg.Csv.Error] on malformed CSV, [Sys_error] on IO failure. *)
val load_table : t -> string -> Relalg.Relation.t * string

(** Whether a warm segment exists for this (non-[.seg]) path. *)
val table_cached : t -> string -> bool

(** {1 Partition catalog} *)

type key = {
  fingerprint : string;  (** table content fingerprint *)
  attrs : string list;
      (** partitioning attributes; the key canonicalizes order (a
          permutation is the same key, so it never forces a rebuild) *)
  tau : int;
  radius : Pkg.Partition.radius_spec;
  level : int option;
      (** [None] — a flat (single-level) partitioning, the only kind
          that existed before format v2; [Some l] — level [l] of a
          {!Pkg.Hierarchy.t} (0 = coarsest). Flat entries written by
          older versions (format v1, order-sensitive ids) still load:
          {!find} falls back to the legacy id and decoder. *)
}

(** Stable identifier derived from the key (hash of its canonical
    serialization) — the [.part] filename stem. *)
val key_id : key -> string

(** Canonical rendering of a radius spec ([none], [abs:...], [thm:...]),
    as used inside {!key_string} and by listings. *)
val radius_string : Pkg.Partition.radius_spec -> string

(** Human-readable canonical form of a key (what {!key_id} hashes). *)
val key_string : key -> string

(** [find t key] is the stored partitioning, or [None] when absent.
    Key comparison ignores attribute order; flat keys also consult the
    pre-v2 order-sensitive id so old catalogs stay warm.
    @raise Segment.Error when the entry exists but is corrupt or was
    stored under a different key (hash collision / tampering). *)
val find : t -> key -> Pkg.Partition.t option

val store : t -> key -> Pkg.Partition.t -> unit

(** [lookup_or_build t key ~build] returns [(p, `Hit)] from the
    catalog when present — zero partitioning work — and otherwise
    builds, stores and returns [(build (), `Built)]. *)
val lookup_or_build :
  t -> key -> build:(unit -> Pkg.Partition.t) ->
  Pkg.Partition.t * [ `Hit | `Built ]

(** [lookup_or_build_hierarchy t ~fingerprint ?radius ?levels ?leaf_tau
    ~attrs rel] resolves a progressive-shading {!Pkg.Hierarchy.t}: each
    level is one catalog entry under [level = Some l] with that level's
    planned tau ({!Pkg.Hierarchy.plan_taus}). All levels present →
    [`Hit] with zero partitioning work; otherwise the whole hierarchy is
    built ({!Pkg.Hierarchy.build}) and every level stored. Only the leaf
    key carries [radius] — coarser levels are radius-free and so shared
    across queries that differ only in their approximation bound.
    @raise Pkg.Faults.Injected under a [partition=build:fail] directive. *)
val lookup_or_build_hierarchy :
  t ->
  fingerprint:string ->
  ?radius:Pkg.Partition.radius_spec ->
  ?levels:int ->
  ?leaf_tau:int ->
  attrs:string list ->
  Relalg.Relation.t ->
  Pkg.Hierarchy.t * [ `Hit | `Built ]

(** {1 Inspection} *)

type entry = {
  id : string;        (** filename stem *)
  entry_key : key;
  groups : int;
  rows : int;         (** cardinality of the partitioned table *)
  bytes : int;        (** file size *)
  age : float;        (** seconds since last modification *)
}

(** All readable catalog entries, newest first. Corrupt entries are
    skipped (listing is diagnostics, not a load path). *)
val entries : t -> entry list
