(* Startup recovery: checkpoint + WAL replay.

   A durability directory holds two files:

     <dir>/checkpoint.seg   PKGQCKPT envelope: seq (i64) | table segment
     <dir>/wal.log          records with seq > checkpoint seq (plus,
                            transiently, records the checkpoint already
                            covers — see below)

   The checkpoint protocol writes the new checkpoint atomically
   (tempfile + fsync + rename via [Wire.write_string_file]) and only
   then truncates the WAL. A crash between the two steps leaves a
   checkpoint whose records are still in the log; the monotone sequence
   numbers make replay idempotent — records with seq <= checkpoint seq
   are skipped, never applied twice. *)

let wal_file = "wal.log"
let checkpoint_file = "checkpoint.seg"

let ckpt_magic = "PKGQCKPT"
let ckpt_version = 1

let wal_path dir = Filename.concat dir wal_file
let checkpoint_path dir = Filename.concat dir checkpoint_file

type stats = {
  checkpoint_seq : int;
  checkpoint_rows : int option;  (** [None]: no checkpoint, base used *)
  records_replayed : int;
  records_skipped : int;
  rows_appended : int;
  rows_deleted : int;
  torn_bytes : int;
  fenced_bytes : int;
      (** bytes of an epoch-regressing WAL suffix truncated at open: a
          deposed primary's post-promotion writes, never replayed *)
  last_seq : int;
  last_epoch : int;  (** highest epoch in the replayed log, 0 if none *)
  wall : float;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "checkpoint %s (seq %d), %d records replayed (%d skipped), +%d/-%d rows, \
     %d torn bytes truncated, %d fenced bytes truncated, epoch %d, %.3fs"
    (match s.checkpoint_rows with
    | Some n -> Printf.sprintf "%d rows" n
    | None -> "absent")
    s.checkpoint_seq s.records_replayed s.records_skipped s.rows_appended
    s.rows_deleted s.torn_bytes s.fenced_bytes s.last_epoch s.wall

(* ------------------------------------------------------------------ *)
(* Checkpoint file                                                    *)
(* ------------------------------------------------------------------ *)

let load_checkpoint dir =
  let path = checkpoint_path dir in
  if not (Sys.file_exists path) then None
  else begin
    let r = Wire.verify ~magic:ckpt_magic ~version:ckpt_version
        (Wire.read_file path) in
    let seq = Wire.get_i64 r in
    if seq < 0 then Wire.error "bad checkpoint sequence %d" seq;
    let rel = Segment.of_string (Wire.get_str r) in
    Some (seq, rel)
  end

let write_checkpoint dir ~seq rel =
  let b = Buffer.create 4096 in
  Wire.put_i64 b seq;
  Wire.put_str b (Segment.to_string rel);
  Wire.write_file (checkpoint_path dir) ~magic:ckpt_magic
    ~version:ckpt_version b

(* ------------------------------------------------------------------ *)
(* Applying ops                                                       *)
(* ------------------------------------------------------------------ *)

(* These mirror the server's apply semantics exactly (append =
   concatenate rows in order; delete = drop ids, compact in order, as
   [Maintain.delete] does), so the recovered relation is byte-identical
   — same segment fingerprint — to the state the live process
   acknowledged. *)

let apply_append rel extra =
  let s = Relalg.Relation.schema rel in
  if not (Relalg.Schema.equal s (Relalg.Relation.schema extra)) then
    Wire.error "wal append record schema does not match table";
  Relalg.Relation.of_rows s
    (Relalg.Relation.to_list rel @ Relalg.Relation.to_list extra)

let apply_delete rel ids =
  let n = Relalg.Relation.cardinality rel in
  let dead = Array.make n false in
  List.iter
    (fun id ->
      if id < 0 || id >= n then
        Wire.error "wal delete record id %d out of range (%d rows)" id n;
      dead.(id) <- true)
    ids;
  let rows =
    List.filteri (fun i _ -> not dead.(i)) (Relalg.Relation.to_list rel)
  in
  Relalg.Relation.of_rows (Relalg.Relation.schema rel) rows

let apply rel (op : Wal.op) =
  match op with
  | Wal.Append extra -> apply_append rel extra
  | Wal.Delete ids -> apply_delete rel ids

(* ------------------------------------------------------------------ *)
(* Recovery                                                           *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
  end

let recover ?sync ~dir ~base () =
  let t0 = Unix.gettimeofday () in
  mkdir_p dir;
  (* a stale checkpoint temp from a writer that died mid-publish is
     never read; remove it so it cannot pile up *)
  (match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f ->
        if Filename.extension (Filename.remove_extension f) = ".tmp" then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      files);
  let ckpt = load_checkpoint dir in
  let ckpt_seq, start_rel =
    match ckpt with Some (seq, rel) -> (seq, rel) | None -> (0, base ())
  in
  let wal, rep = Wal.open_log ?sync (wal_path dir) in
  (* after a checkpoint truncated the log, new records must keep
     numbering above the checkpoint's seq or the skip guard would
     swallow them on the next recovery *)
  Wal.bump_seq wal ckpt_seq;
  let replayed = ref 0 in
  let skipped = ref 0 in
  let appended = ref 0 in
  let deleted = ref 0 in
  let rel =
    List.fold_left
      (fun rel (rc : Wal.record) ->
        if rc.seq <= ckpt_seq then begin
          incr skipped;
          rel
        end
        else begin
          incr replayed;
          (match rc.op with
          | Wal.Append extra ->
            appended := !appended + Relalg.Relation.cardinality extra
          | Wal.Delete ids -> deleted := !deleted + List.length ids);
          apply rel rc.op
        end)
      start_rel rep.ops
  in
  let stats =
    {
      checkpoint_seq = ckpt_seq;
      checkpoint_rows =
        Option.map (fun (_, r) -> Relalg.Relation.cardinality r) ckpt;
      records_replayed = !replayed;
      records_skipped = !skipped;
      rows_appended = !appended;
      rows_deleted = !deleted;
      torn_bytes = rep.torn_bytes;
      fenced_bytes = rep.fenced_bytes;
      last_seq = max ckpt_seq rep.replay_last_seq;
      last_epoch = rep.replay_last_epoch;
      wall = Unix.gettimeofday () -. t0;
    }
  in
  (rel, wal, stats)

let checkpoint ~dir wal rel =
  write_checkpoint dir ~seq:(Wal.last_seq wal) rel;
  Wal.reset wal
