module V = Relalg.Value
module S = Relalg.Schema
module R = Relalg.Relation

exception Error = Wire.Error

let magic = "PKGQSEG1"
let version = 1

let ty_tag = function
  | V.TInt -> 0
  | V.TFloat -> 1
  | V.TStr -> 2
  | V.TBool -> 3

let tag_ty = function
  | 0 -> V.TInt
  | 1 -> V.TFloat
  | 2 -> V.TStr
  | 3 -> V.TBool
  | t -> Wire.error "unknown attribute type tag %d" t

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

(* Numeric columns carry a storage tag: 0 = i64 cells (every non-null
   cell is [Int]), 1 = f64 cells. Partition representatives store
   group means, so an int-typed attribute can legitimately hold floats;
   tag 1 preserves those exactly. A mixed Int/Float column is widened
   to floats (value-preserving; the Int constructor is not). *)
let encode_numeric b rel i n =
  let all_int = ref true in
  for row = 0 to n - 1 do
    match Relalg.Tuple.get (R.row rel row) i with
    | V.Int _ | V.Null -> ()
    | V.Float _ | V.Str _ | V.Bool _ -> all_int := false
  done;
  if !all_int then begin
    Wire.put_u8 b 0;
    for row = 0 to n - 1 do
      match Relalg.Tuple.get (R.row rel row) i with
      | V.Int x -> Wire.put_i64 b x
      | V.Null -> Wire.put_i64 b 0
      | _ -> assert false
    done
  end
  else begin
    Wire.put_u8 b 1;
    for row = 0 to n - 1 do
      match Relalg.Tuple.get (R.row rel row) i with
      | V.Int x -> Wire.put_f64 b (float_of_int x)
      | V.Float f -> Wire.put_f64 b f
      | V.Null -> Wire.put_f64 b 0.
      | V.Str _ | V.Bool _ ->
        invalid_arg "Segment: non-numeric cell in a numeric column"
    done
  end

let encode_strings b rel i n =
  let index : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let entries = ref [] in
  let count = ref 0 in
  let idx_of s =
    match Hashtbl.find_opt index s with
    | Some k -> k
    | None ->
      let k = !count in
      Hashtbl.add index s k;
      entries := s :: !entries;
      incr count;
      k
  in
  let cells =
    Array.init n (fun row ->
        match Relalg.Tuple.get (R.row rel row) i with
        | V.Str s -> idx_of s
        | V.Null -> -1
        | V.Int _ | V.Float _ | V.Bool _ ->
          invalid_arg "Segment: non-string cell in a string column")
  in
  Wire.put_i32 b !count;
  List.iter (Wire.put_str b) (List.rev !entries);
  Array.iter (Wire.put_i32 b) cells

let encode_column b rel i (a : S.attr) n =
  let nulls = Bytes.make n '\000' in
  let any_null = ref false in
  for row = 0 to n - 1 do
    if V.is_null (Relalg.Tuple.get (R.row rel row) i) then begin
      Bytes.set nulls row '\001';
      any_null := true
    end
  done;
  Wire.put_u8 b (if !any_null then 1 else 0);
  if !any_null then Buffer.add_bytes b nulls;
  match a.ty with
  | V.TInt | V.TFloat -> encode_numeric b rel i n
  | V.TStr -> encode_strings b rel i n
  | V.TBool ->
    for row = 0 to n - 1 do
      match Relalg.Tuple.get (R.row rel row) i with
      | V.Bool bo -> Wire.put_u8 b (if bo then 1 else 0)
      | V.Null -> Wire.put_u8 b 0
      | V.Int _ | V.Float _ | V.Str _ ->
        invalid_arg "Segment: non-bool cell in a bool column"
    done

let encode_body rel =
  let schema = R.schema rel in
  let attrs = S.attrs schema in
  let n = R.cardinality rel in
  let b = Buffer.create (1024 + (n * 8 * List.length attrs)) in
  Wire.put_i32 b (List.length attrs);
  Wire.put_i32 b n;
  List.iter
    (fun (a : S.attr) ->
      Wire.put_str b a.name;
      Wire.put_u8 b (ty_tag a.ty))
    attrs;
  List.iteri (fun i a -> encode_column b rel i a n) attrs;
  b

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)
(* ------------------------------------------------------------------ *)

let decode_body r =
  let n_attrs = Wire.get_i32 r in
  if n_attrs < 0 then Wire.error "negative attribute count %d" n_attrs;
  let n = Wire.get_i32 r in
  if n < 0 then Wire.error "negative row count %d" n;
  let attrs =
    List.init n_attrs (fun _ ->
        let name = Wire.get_str r in
        { S.name; ty = tag_ty (Wire.get_u8 r) })
  in
  let schema =
    try S.make attrs
    with Invalid_argument msg -> Wire.error "invalid schema: %s" msg
  in
  let rows = Array.init n (fun _ -> Array.make n_attrs V.Null) in
  let seeded = ref [] in
  List.iteri
    (fun i (a : S.attr) ->
      let nulls =
        match Wire.get_u8 r with
        | 0 -> Bytes.make n '\000'
        | 1 -> Bytes.of_string (Wire.get_raw r n)
        | f -> Wire.error "bad null-map flag %d" f
      in
      let is_null row = Bytes.get nulls row = '\001' in
      match a.ty with
      | V.TInt | V.TFloat -> (
        let data = Array.make n nan in
        (match Wire.get_u8 r with
        | 0 ->
          let xs = Wire.get_i64_array r n in
          for row = 0 to n - 1 do
            if not (is_null row) then begin
              let x = Array.unsafe_get xs row in
              rows.(row).(i) <- V.Int x;
              data.(row) <- float_of_int x
            end
          done
        | 1 ->
          Wire.get_f64_into r data;
          for row = 0 to n - 1 do
            if is_null row then data.(row) <- nan
            else rows.(row).(i) <- V.Float data.(row)
          done
        | t -> Wire.error "bad numeric storage tag %d" t);
        seeded := (i, Relalg.Column.of_raw ~data ~nulls) :: !seeded)
      | V.TBool ->
        let raw = Wire.get_raw r n in
        for row = 0 to n - 1 do
          if not (is_null row) then
            rows.(row).(i) <- V.Bool (String.unsafe_get raw row <> '\000')
        done
      | V.TStr ->
        let cnt = Wire.get_i32 r in
        if cnt < 0 then Wire.error "negative dictionary size %d" cnt;
        let dict = Array.init cnt (fun _ -> Wire.get_str r) in
        let idxs = Wire.get_i32_array r n in
        for row = 0 to n - 1 do
          let idx = Array.unsafe_get idxs row in
          if not (is_null row) then
            if idx < 0 || idx >= cnt then
              Wire.error "dictionary index %d out of range (size %d)" idx cnt
            else rows.(row).(i) <- V.Str dict.(idx)
        done)
    attrs;
  R.of_array_columns schema rows !seeded

(* ------------------------------------------------------------------ *)
(* Public API                                                         *)
(* ------------------------------------------------------------------ *)

let to_string rel = Wire.seal ~magic ~version (encode_body rel)

let of_string s = decode_body (Wire.verify ~magic ~version s)

let write path rel = Wire.write_file path ~magic ~version (encode_body rel)

let read path = of_string (Wire.read_file path)

let fingerprint rel =
  Wire.hex64 (Wire.hash64 (Buffer.contents (encode_body rel)))

let fingerprint_file path = Wire.hex64 (Wire.hash64 (Wire.read_file path))
