(* Token-normalized query fingerprints. The hash is FNV-1a 64 over a
   canonical rendering of the lexed token stream, so formatting and
   keyword case cannot split (or falsely merge) cache entries. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let of_string s = Printf.sprintf "%016Lx" (hash64 s)

let render_token ?(abstract_numbers = false) buf (t : Lexer.token) =
  (match t with
  | Lexer.IDENT s ->
    Buffer.add_string buf "i:";
    Buffer.add_string buf s
  | Lexer.NUMBER f ->
    if abstract_numbers then Buffer.add_string buf "n:#"
    else Buffer.add_string buf (Printf.sprintf "n:%.17g" f)
  | Lexer.STRING s ->
    Buffer.add_string buf "s:";
    Buffer.add_string buf s
  | Lexer.KW k ->
    Buffer.add_string buf "k:";
    Buffer.add_string buf k
  | Lexer.STAR -> Buffer.add_string buf "*"
  | Lexer.LPAREN -> Buffer.add_string buf "("
  | Lexer.RPAREN -> Buffer.add_string buf ")"
  | Lexer.COMMA -> Buffer.add_string buf ","
  | Lexer.DOT -> Buffer.add_string buf "."
  | Lexer.PLUS -> Buffer.add_string buf "+"
  | Lexer.MINUS -> Buffer.add_string buf "-"
  | Lexer.SLASH -> Buffer.add_string buf "/"
  | Lexer.EQ -> Buffer.add_string buf "="
  | Lexer.NEQ -> Buffer.add_string buf "<>"
  | Lexer.LT -> Buffer.add_string buf "<"
  | Lexer.LE -> Buffer.add_string buf "<="
  | Lexer.GT -> Buffer.add_string buf ">"
  | Lexer.GE -> Buffer.add_string buf ">="
  | Lexer.EOF -> ());
  (* unambiguous separator: never appears inside a rendered token *)
  Buffer.add_char buf '\x1f'

let fingerprint ~abstract_numbers text =
  match Lexer.tokenize text with
  | toks ->
    let buf = Buffer.create (String.length text) in
    Array.iter
      (fun (s : Lexer.spanned) ->
        render_token ~abstract_numbers buf s.Lexer.tok)
      toks;
    of_string (Buffer.contents buf)
  | exception Lexer.Lex_error _ -> of_string text

let of_query text = fingerprint ~abstract_numbers:false text

(* Structure fingerprint: numeric literals are rendered as a fixed
   placeholder, so parameter-tweaked variants of one query (same shape,
   different constants) share a key. Used by the server's basis cache:
   such variants have identical ILP columns, so a saved basis from one
   warm-starts the others. *)
let structure_of_query text = fingerprint ~abstract_numbers:true text
