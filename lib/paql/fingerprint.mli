(** Content fingerprints for PaQL queries — the key of the service
    layer's plan and result caches.

    Two queries that lex to the same token stream get the same
    fingerprint: whitespace, line breaks, comments-between-tokens and
    keyword case never defeat a cache, while any semantic change (a
    different bound, attribute, or operator) always does. Identifier
    case is preserved, matching the language's case-sensitive
    attribute names. *)

(** [of_query text] is the 16-hex-digit fingerprint of the query's
    canonical token stream. Text that does not lex falls back to
    {!of_string} on the raw bytes, so the fingerprint is total — a
    malformed query still caches its (negative) parse outcome
    consistently. *)
val of_query : string -> string

(** [structure_of_query text] fingerprints the query's {e shape}:
    numeric literals are abstracted to a placeholder, so
    parameter-tweaked variants of one query (same attributes,
    operators and aggregates, different constants) share a key. This
    keys the server's basis cache — such variants build ILPs over
    identical columns, so one's optimal basis warm-starts another. *)
val structure_of_query : string -> string

(** Raw-byte fingerprint (FNV-1a 64, 16 hex digits). *)
val of_string : string -> string
