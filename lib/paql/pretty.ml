let agg_string pkg = function
  | Ast.Count_star -> Printf.sprintf "COUNT(%s.*)" pkg
  | Ast.Count a -> Printf.sprintf "COUNT(%s.%s)" pkg a
  | Ast.Sum a -> Printf.sprintf "SUM(%s.%s)" pkg a
  | Ast.Avg a -> Printf.sprintf "AVG(%s.%s)" pkg a
  | Ast.Min a -> Printf.sprintf "MIN(%s.%s)" pkg a
  | Ast.Max a -> Printf.sprintf "MAX(%s.%s)" pkg a

let agg_bare = function
  | Ast.Count_star -> "COUNT(*)"
  | Ast.Count a -> Printf.sprintf "COUNT(%s)" a
  | Ast.Sum a -> Printf.sprintf "SUM(%s)" a
  | Ast.Avg a -> Printf.sprintf "AVG(%s)" a
  | Ast.Min a -> Printf.sprintf "MIN(%s)" a
  | Ast.Max a -> Printf.sprintf "MAX(%s)" a

let rec pp_gexpr ~pkg ppf = function
  | Ast.Num f -> Format.fprintf ppf "%g" f
  | Ast.Agg (k, None) -> Format.pp_print_string ppf (agg_string pkg k)
  | Ast.Agg (k, Some filter) ->
    Format.fprintf ppf "(SELECT %s FROM %s WHERE %a)" (agg_bare k) pkg
      Relalg.Expr.pp filter
  | Ast.Add (a, b) ->
    Format.fprintf ppf "(%a + %a)" (pp_gexpr ~pkg) a (pp_gexpr ~pkg) b
  | Ast.Subtract (a, b) ->
    Format.fprintf ppf "(%a - %a)" (pp_gexpr ~pkg) a (pp_gexpr ~pkg) b
  | Ast.Mult (a, b) ->
    Format.fprintf ppf "(%a * %a)" (pp_gexpr ~pkg) a (pp_gexpr ~pkg) b
  | Ast.Divide (a, b) ->
    Format.fprintf ppf "(%a / %a)" (pp_gexpr ~pkg) a (pp_gexpr ~pkg) b
  | Ast.Negate a -> Format.fprintf ppf "(-%a)" (pp_gexpr ~pkg) a
  | Ast.Expected a -> Format.fprintf ppf "EXPECTED %a" (pp_gexpr ~pkg) a

let gcmp_string = function
  | Ast.Le -> "<="
  | Ast.Ge -> ">="
  | Ast.Eq -> "="
  | Ast.Lt -> "<"
  | Ast.Gt -> ">"

let rec pp_gpred ~pkg ppf = function
  | Ast.Gcmp (c, a, b) ->
    Format.fprintf ppf "%a %s %a" (pp_gexpr ~pkg) a (gcmp_string c)
      (pp_gexpr ~pkg) b
  | Ast.Gbetween (e, lo, hi) ->
    Format.fprintf ppf "%a BETWEEN %a AND %a" (pp_gexpr ~pkg) e
      (pp_gexpr ~pkg) lo (pp_gexpr ~pkg) hi
  | Ast.Gprob (c, a, b, p) ->
    Format.fprintf ppf "%a %s %a WITH PROBABILITY %g" (pp_gexpr ~pkg) a
      (gcmp_string c) (pp_gexpr ~pkg) b p
  | Ast.Gand (a, b) ->
    Format.fprintf ppf "%a AND@ %a" (pp_gpred ~pkg) a (pp_gpred ~pkg) b

let pp_query ppf (q : Ast.query) =
  Format.fprintf ppf "@[<v>SELECT PACKAGE(%s) AS %s@," q.rel_alias
    q.package_name;
  Format.fprintf ppf "FROM %s %s" q.rel_name q.rel_alias;
  Option.iter (fun k -> Format.fprintf ppf " REPEAT %d" k) q.repeat;
  Option.iter
    (fun w -> Format.fprintf ppf "@,WHERE %a" Relalg.Expr.pp w)
    q.where;
  Option.iter
    (fun st ->
      Format.fprintf ppf "@,SUCH THAT @[%a@]" (pp_gpred ~pkg:q.package_name) st)
    q.such_that;
  Option.iter
    (fun o ->
      match o with
      | Ast.Minimize e ->
        Format.fprintf ppf "@,MINIMIZE %a" (pp_gexpr ~pkg:q.package_name) e
      | Ast.Maximize e ->
        Format.fprintf ppf "@,MAXIMIZE %a" (pp_gexpr ~pkg:q.package_name) e)
    q.objective;
  Format.fprintf ppf "@]"

let to_string q = Format.asprintf "%a" pp_query q
