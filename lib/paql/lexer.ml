type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | KW of string
  | STAR
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

type spanned = { tok : token; pos : int }

exception Lex_error of string * int

let keywords =
  [
    "SELECT"; "PACKAGE"; "AS"; "FROM"; "REPEAT"; "WHERE"; "SUCH"; "THAT";
    "AND"; "OR"; "NOT"; "BETWEEN"; "IS"; "NULL"; "MINIMIZE"; "MAXIMIZE";
    "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "TRUE"; "FALSE"; "WITH";
    "PROBABILITY"; "EXPECTED";
  ]

let keyword_set =
  let t = Hashtbl.create 32 in
  List.iter (fun k -> Hashtbl.add t k ()) keywords;
  t

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let emit tok pos = out := { tok; pos } :: !out in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] and pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '-' then begin
      (* SQL line comment *)
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      let word = String.sub s !i (!j - !i) in
      let upper = String.uppercase_ascii word in
      if Hashtbl.mem keyword_set upper then emit (KW upper) pos
      else emit (IDENT word) pos;
      i := !j
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let j = ref !i in
      while !j < n && (is_digit s.[!j] || s.[!j] = '.') do
        incr j
      done;
      (* exponent *)
      if !j < n && (s.[!j] = 'e' || s.[!j] = 'E') then begin
        let k = ref (!j + 1) in
        if !k < n && (s.[!k] = '+' || s.[!k] = '-') then incr k;
        if !k < n && is_digit s.[!k] then begin
          while !k < n && is_digit s.[!k] do
            incr k
          done;
          j := !k
        end
      end;
      let text = String.sub s !i (!j - !i) in
      (match float_of_string_opt text with
      | Some f -> emit (NUMBER f) pos
      | None -> raise (Lex_error ("invalid number " ^ text, pos)));
      i := !j
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while not !closed do
        if !j >= n then raise (Lex_error ("unterminated string literal", pos));
        if s.[!j] = '\'' then
          if !j + 1 < n && s.[!j + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            j := !j + 2
          end
          else begin
            closed := true;
            incr j
          end
        else begin
          Buffer.add_char buf s.[!j];
          incr j
        end
      done;
      emit (STRING (Buffer.contents buf)) pos;
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<=" ->
        emit LE pos;
        i := !i + 2
      | ">=" ->
        emit GE pos;
        i := !i + 2
      | "<>" | "!=" ->
        emit NEQ pos;
        i := !i + 2
      | _ -> (
        (match c with
        | '*' -> emit STAR pos
        | '(' -> emit LPAREN pos
        | ')' -> emit RPAREN pos
        | ',' -> emit COMMA pos
        | '.' -> emit DOT pos
        | '+' -> emit PLUS pos
        | '-' -> emit MINUS pos
        | '/' -> emit SLASH pos
        | '=' -> emit EQ pos
        | '<' -> emit LT pos
        | '>' -> emit GT pos
        | c ->
          raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos)));
        incr i)
    end
  done;
  emit EOF n;
  Array.of_list (List.rev !out)

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER f -> Printf.sprintf "number %g" f
  | STRING s -> Printf.sprintf "string '%s'" s
  | KW k -> k
  | STAR -> "'*'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | SLASH -> "'/'"
  | EQ -> "'='"
  | NEQ -> "'<>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EOF -> "end of input"
