(** Abstract syntax of PaQL (Appendix A.4 of the paper).

    A package query selects a multiset of tuples (a package) from one
    input relation. Base predicates ([WHERE]) constrain tuples
    individually and reuse the relational {!Relalg.Expr} language;
    global predicates ([SUCH THAT]) constrain aggregates over the
    package. *)

(** Aggregate functions over the package. [Min]/[Max] parse but are
    rejected by {!Analyze} in global predicates (non-linear). *)
type agg_kind =
  | Count_star
  | Count of string
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

(** Global (package-level) expressions. [Agg (k, Some pred)] is the
    subquery form [(SELECT k FROM P WHERE pred)]; [Agg (k, None)]
    is the abbreviation [k(P....)]. [Expected e] is the stochastic
    extension's [EXPECTED e] — the expectation of [e] over scenario
    realizations of the noisy attributes; deterministic evaluation
    reads it on the base realization. *)
type gexpr =
  | Num of float
  | Agg of agg_kind * Relalg.Expr.t option
  | Add of gexpr * gexpr
  | Subtract of gexpr * gexpr
  | Mult of gexpr * gexpr
  | Divide of gexpr * gexpr
  | Negate of gexpr
  | Expected of gexpr

type gcmp = Le | Ge | Eq | Lt | Gt

(** Global predicates: conjunctions of comparisons and ranges.
    [Gprob (cmp, a, b, p)] is the probabilistic comparison
    [a cmp b WITH PROBABILITY p] of the stochastic extension
    (arXiv:2103.06784): the comparison must hold with probability at
    least [p] over the scenario distribution. *)
type gpred =
  | Gcmp of gcmp * gexpr * gexpr
  | Gbetween of gexpr * gexpr * gexpr
  | Gprob of gcmp * gexpr * gexpr * float
  | Gand of gpred * gpred

type objective = Minimize of gexpr | Maximize of gexpr

type query = {
  package_name : string;  (** [AS P] — defaults to the package alias *)
  rel_name : string;
  rel_alias : string;
  repeat : int option;
      (** [REPEAT K]: each tuple may appear up to [K+1] times;
          [None] means unbounded repetition. *)
  where : Relalg.Expr.t option;
  such_that : gpred option;
  objective : objective option;
}

(** [conjuncts gp] flattens nested [Gand]s in left-to-right order. *)
val conjuncts : gpred -> gpred list

(** Whether the expression contains an [Expected] node. *)
val has_expected : gexpr -> bool

(** Whether the query uses any stochastic construct: a
    [WITH PROBABILITY] global predicate or an [EXPECTED] expression. *)
val is_stochastic : query -> bool

(** Attributes referenced anywhere in global predicates and objective
    (aggregate arguments and subquery filters), without duplicates. *)
val global_attrs : query -> string list

(** All attributes the query touches (base + global). *)
val all_attrs : query -> string list
