type compiled_constraint = {
  coeff : Relalg.Tuple.t -> float;
  coeff_rows : Relalg.Relation.t -> int -> float;
      (* row-indexed variant over cached columns; bind the relation
         once, then apply per row id *)
  clo : float;
  chi : float;
  cname : string;
  cattrs : string list;
}

type stochastic_constraint = {
  sterms : Linform.term list;
      (* normalized linear form of the comparison; the stochastic
         driver re-derives scenario-dependent coefficients from the
         terms, so they are kept rather than pre-closed like
         [compiled_constraint] *)
  scoeff_rows : Relalg.Relation.t -> int -> float;
      (* base-realization coefficients (same contract as [coeff_rows]) *)
  slo : float;
  shi : float;
  sprob : float;
  sname : string;
  sattrs : string list;
}

type spec = {
  query : Ast.query;
  schema : Relalg.Schema.t;
  where : Relalg.Expr.t option;
  constraints : compiled_constraint list;
  stochastic : stochastic_constraint list;
  expected_objective : bool;
  objective : (Lp.Problem.sense * (Relalg.Tuple.t -> float) * float) option;
  objective_rows : Relalg.Relation.t -> int -> float;
      (* row-indexed objective coefficients; constantly 0. when the
         query has no objective *)
  max_count : float;
}

let is_stochastic spec = spec.stochastic <> [] || spec.expected_objective

let ( let* ) = Result.bind

let compile schema (q : Ast.query) =
  let* () = Result.map_error (String.concat "; ") (Analyze.check schema q) in
  (* Split the conjunction: deterministic leaves compile exactly as
     before (so the deterministic drivers see an unchanged spec), while
     WITH PROBABILITY leaves land in [stochastic] for the scenario
     solver. Names are indexed within each class. *)
  let det_leaves, stoch_leaves =
    match q.such_that with
    | None -> [], []
    | Some gp ->
      List.partition
        (function Ast.Gprob _ -> false | _ -> true)
        (Ast.conjuncts gp)
  in
  let* constraints =
    let* cs =
      List.fold_left
        (fun acc leaf ->
          let* acc = acc in
          let* cs = Linform.of_conjunct leaf in
          Ok (acc @ cs))
        (Ok []) det_leaves
    in
    Ok
      (List.mapi
         (fun i (c : Linform.constr) ->
           {
             coeff = Linform.coeff_fn schema c.Linform.cterms;
             coeff_rows =
               (fun rel -> Linform.coeff_rows schema rel c.Linform.cterms);
             clo = c.Linform.lo;
             chi = c.Linform.hi;
             cname = Printf.sprintf "g%d" i;
             cattrs = Linform.term_attrs c.Linform.cterms;
           })
         cs)
  in
  let* stochastic =
    let* scs =
      List.fold_left
        (fun acc leaf ->
          let* acc = acc in
          match leaf with
          | Ast.Gprob (_, _, _, p) ->
            let* cs = Linform.of_conjunct leaf in
            (match cs with
            | [ c ] -> Ok ((c, p) :: acc)
            | _ -> assert false (* a comparison lowers to one constr *))
          | _ -> assert false)
        (Ok [])
        stoch_leaves
    in
    Ok
      (List.mapi
         (fun i ((c : Linform.constr), p) ->
           {
             sterms = c.Linform.cterms;
             scoeff_rows =
               (fun rel -> Linform.coeff_rows schema rel c.Linform.cterms);
             slo = c.Linform.lo;
             shi = c.Linform.hi;
             sprob = p;
             sname = Printf.sprintf "s%d" i;
             sattrs = Linform.term_attrs c.Linform.cterms;
           })
         (List.rev scs))
  in
  let* objective, objective_rows =
    match q.objective with
    | None -> Ok (None, fun _ _ -> 0.)
    | Some o ->
      let* sense, terms, const = Linform.of_objective o in
      Ok
        ( Some (sense, Linform.coeff_fn schema terms, const),
          fun rel -> Linform.coeff_rows schema rel terms )
  in
  let max_count =
    match q.repeat with
    | None -> infinity
    | Some k -> float_of_int (k + 1)
  in
  let expected_objective =
    match q.objective with
    | Some (Ast.Minimize e) | Some (Ast.Maximize e) -> Ast.has_expected e
    | None -> false
  in
  Ok
    {
      query = q;
      schema;
      where = q.where;
      constraints;
      stochastic;
      expected_objective;
      objective;
      objective_rows;
      max_count;
    }

let compile_exn schema q =
  match compile schema q with
  | Ok spec -> spec
  | Error msg -> invalid_arg ("Translate.compile: " ^ msg)

let base_candidates spec r =
  match spec.where with
  | None -> Array.init (Relalg.Relation.cardinality r) Fun.id
  | Some pred -> Relalg.Scan.select_indices r pred

let objective_sense spec =
  match spec.objective with
  | Some (sense, _, _) -> sense
  | None -> Lp.Problem.Minimize

let to_problem ?var_hi ?offsets spec r ~candidates =
  let nconstraints = List.length spec.constraints in
  (match offsets with
  | Some o when Array.length o <> nconstraints ->
    invalid_arg "Translate.to_problem: offsets arity mismatch"
  | _ -> ());
  let obj_row = spec.objective_rows r in
  let cap k =
    match var_hi with Some f -> f k | None -> spec.max_count
  in
  let vars =
    Array.to_list
      (Array.mapi
         (fun k row_id ->
           Lp.Problem.var
             ~name:(Printf.sprintf "x%d" row_id)
             ~integer:true ~lo:0. ~hi:(cap k) (obj_row row_id))
         candidates)
  in
  let rows =
    List.mapi
      (fun ci c ->
        let crow = c.coeff_rows r in
        let coeffs = ref [] in
        Array.iteri
          (fun k row_id ->
            let a = crow row_id in
            if a <> 0. then coeffs := (k, a) :: !coeffs)
          candidates;
        let off =
          match offsets with Some o -> o.(ci) | None -> 0.
        in
        Lp.Problem.row ~name:c.cname (List.rev !coeffs) ~lo:(c.clo -. off)
          ~hi:(c.chi -. off))
      spec.constraints
  in
  Lp.Problem.make ~sense:(objective_sense spec) ~vars ~rows

let pp_bound ppf v =
  if v = infinity then Format.pp_print_string ppf "+inf"
  else if v = neg_infinity then Format.pp_print_string ppf "-inf"
  else Format.fprintf ppf "%g" v

let describe spec rel =
  let n = Relalg.Relation.cardinality rel in
  let candidates = base_candidates spec rel in
  let kept = Array.length candidates in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "@[<v>package query over %d tuple(s)@," n;
  Format.fprintf ppf
    "base predicate keeps %d candidate(s) (%d variable(s) eliminated, \
     rule 2)@,"
    kept (n - kept);
  Format.fprintf ppf "ILP: %d integer variable(s), bounds [0, %a] \
                      (repetition rule 1), %d constraint row(s)@,"
    kept pp_bound spec.max_count
    (List.length spec.constraints);
  List.iter
    (fun c ->
      Format.fprintf ppf "  %s: %a <= sum <= %a  (attrs: %s)@," c.cname
        pp_bound c.clo pp_bound c.chi
        (match c.cattrs with
        | [] -> "cardinality only"
        | attrs -> String.concat ", " attrs))
    spec.constraints;
  if spec.stochastic <> [] then begin
    Format.fprintf ppf "stochastic constraint row(s): %d@,"
      (List.length spec.stochastic);
    List.iter
      (fun s ->
        Format.fprintf ppf
          "  %s: %a <= sum <= %a WITH PROBABILITY %g  (attrs: %s)@," s.sname
          pp_bound s.slo pp_bound s.shi s.sprob
          (match s.sattrs with
          | [] -> "cardinality only"
          | attrs -> String.concat ", " attrs))
      spec.stochastic
  end;
  if spec.expected_objective then
    Format.fprintf ppf "objective is an expectation (EXPECTED)@,";
  (match spec.objective with
  | None -> Format.fprintf ppf "objective: none (vacuous, rule 4)@,"
  | Some (sense, _, const) ->
    Format.fprintf ppf "objective: %s linear form%s@,"
      (match sense with
      | Lp.Problem.Minimize -> "minimize"
      | Lp.Problem.Maximize -> "maximize")
      (if const <> 0. then Printf.sprintf " (+ constant %g)" const else ""));
  Format.pp_print_flush ppf ();
  Buffer.contents buf
