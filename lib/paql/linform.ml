type term_kind =
  | Count_star
  | Count of string
  | Sum of string
  | Avg of string

type term = { kind : term_kind; filter : Relalg.Expr.t option; coeff : float }

type t = { terms : term list; const : float }

let ( let* ) = Result.bind

let constant c = { terms = []; const = c }

let is_constant f = f.terms = []

let scale a f =
  { terms = List.map (fun t -> { t with coeff = a *. t.coeff }) f.terms;
    const = a *. f.const }

let add f g = { terms = f.terms @ g.terms; const = f.const +. g.const }

let sub f g = add f (scale (-1.) g)

let kind_of_agg = function
  | Ast.Count_star -> Ok Count_star
  | Ast.Count a -> Ok (Count a)
  | Ast.Sum a -> Ok (Sum a)
  | Ast.Avg a -> Ok (Avg a)
  | Ast.Min _ | Ast.Max _ ->
    Error "MIN/MAX aggregates are not linear and cannot appear in global \
           predicates or objectives"

let rec of_gexpr = function
  | Ast.Num f -> Ok (constant f)
  | Ast.Agg (k, filter) ->
    let* kind = kind_of_agg k in
    Ok { terms = [ { kind; filter; coeff = 1. } ]; const = 0. }
  | Ast.Add (a, b) ->
    let* fa = of_gexpr a in
    let* fb = of_gexpr b in
    Ok (add fa fb)
  | Ast.Subtract (a, b) ->
    let* fa = of_gexpr a in
    let* fb = of_gexpr b in
    Ok (sub fa fb)
  | Ast.Mult (a, b) ->
    let* fa = of_gexpr a in
    let* fb = of_gexpr b in
    if is_constant fa then Ok (scale fa.const fb)
    else if is_constant fb then Ok (scale fb.const fa)
    else Error "non-linear global expression: product of two aggregates"
  | Ast.Divide (a, b) ->
    let* fa = of_gexpr a in
    let* fb = of_gexpr b in
    if is_constant fb then
      if fb.const = 0. then Error "division by zero in global expression"
      else Ok (scale (1. /. fb.const) fa)
    else Error "non-linear global expression: division by an aggregate"
  | Ast.Negate a ->
    let* fa = of_gexpr a in
    Ok (scale (-1.) fa)
  (* Expectation is linear, so the linear form of [EXPECTED e] is the
     form of [e]; deterministic evaluation reads the coefficients on
     the base realization, the stochastic driver swaps in scenario
     means. *)
  | Ast.Expected a -> of_gexpr a

type constr = { cterms : term list; lo : float; hi : float }

let has_avg f =
  List.exists (fun t -> match t.kind with Avg _ -> true | _ -> false) f.terms

(* AVG rewrite: a form [alpha * AVG_f(a) + c  cmp  0] becomes
   [alpha * SUM_f(a) + c * COUNT_f  cmp  0] (multiplying by the
   filtered cardinality, which is nonnegative). Supported only for a
   single AVG term with no other aggregate terms. *)
let rewrite_avg f =
  match f.terms with
  | [ ({ kind = Avg a; filter; coeff } as _t) ] ->
    Ok
      {
        terms =
          [
            { kind = Sum a; filter; coeff };
            { kind = Count_star; filter; coeff = f.const };
          ];
        const = 0.;
      }
  | _ ->
    Error
      "AVG can only be combined with constants in a global predicate (the \
       cardinality rewrite supports a single AVG term)"

let constraint_of_form cmp f =
  let* f = if has_avg f then rewrite_avg f else Ok f in
  let bound = -.f.const in
  let lo, hi =
    match cmp with
    | Ast.Le | Ast.Lt -> neg_infinity, bound
    | Ast.Ge | Ast.Gt -> bound, infinity
    | Ast.Eq -> bound, bound
  in
  Ok { cterms = f.terms; lo; hi }

let of_conjunct = function
  | Ast.Gcmp (cmp, e1, e2) | Ast.Gprob (cmp, e1, e2, _) ->
    (* a probabilistic comparison lowers to the same linear form; the
       probability is carried separately by [Translate] *)
    let* f1 = of_gexpr e1 in
    let* f2 = of_gexpr e2 in
    let f = sub f1 f2 in
    let* c = constraint_of_form cmp f in
    Ok [ c ]
  | Ast.Gbetween (e, elo, ehi) ->
    let* f = of_gexpr e in
    let* flo = of_gexpr elo in
    let* fhi = of_gexpr ehi in
    if not (is_constant flo && is_constant fhi) then
      Error "BETWEEN bounds must be constants"
    else if has_avg f then begin
      (* desugar into two rewritten inequalities *)
      let* c1 = constraint_of_form Ast.Ge (sub f flo) in
      let* c2 = constraint_of_form Ast.Le (sub f fhi) in
      Ok [ c1; c2 ]
    end
    else
      Ok
        [
          {
            cterms = f.terms;
            lo = flo.const -. f.const;
            hi = fhi.const -. f.const;
          };
        ]
  | Ast.Gand _ -> assert false (* flattened by the caller *)

let of_gpred gp =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | conj :: rest ->
      let* cs = of_conjunct conj in
      go (List.rev_append cs acc) rest
  in
  go [] (Ast.conjuncts gp)

let of_objective o =
  let sense, e =
    match o with
    | Ast.Minimize e -> Lp.Problem.Minimize, e
    | Ast.Maximize e -> Lp.Problem.Maximize, e
  in
  let* f = of_gexpr e in
  if has_avg f then
    Error "AVG is not supported in objectives (non-linear)"
  else Ok (sense, f.terms, f.const)

let coeff_fn schema terms =
  (* Precompile attribute indices; evaluate filters per tuple. *)
  let compiled =
    List.map
      (fun t ->
        let idx =
          match t.kind with
          | Count_star -> -1
          | Count a | Sum a | Avg a -> Relalg.Schema.index_of schema a
        in
        (match t.kind with
        | Avg _ ->
          invalid_arg "Linform.coeff_fn: AVG term survived normalization"
        | _ -> ());
        (t, idx))
      terms
  in
  fun tuple ->
    List.fold_left
      (fun acc (t, idx) ->
        let passes =
          match t.filter with
          | None -> true
          | Some f -> Relalg.Expr.eval_bool schema tuple f
        in
        if not passes then acc
        else
          match t.kind with
          | Count_star -> acc +. t.coeff
          | Count _ ->
            if Relalg.Value.is_null (Relalg.Tuple.get tuple idx) then acc
            else acc +. t.coeff
          | Sum _ -> (
            match Relalg.Value.to_float_opt (Relalg.Tuple.get tuple idx) with
            | Some v -> acc +. (t.coeff *. v)
            | None -> acc)
          | Avg _ -> assert false)
      0. compiled

(* Row-indexed variant of [coeff_fn]: coefficients are read straight
   from the relation's cached unboxed columns, and term filters lower
   to vectorized predicates when possible. Build once per relation,
   then apply per row — this is what the ILP column construction in
   [Translate.to_problem] runs over. *)
let coeff_rows schema rel terms =
  let compiled =
    List.map
      (fun t ->
        let keep =
          match t.filter with
          | None -> fun _ -> true
          | Some f -> (
            match Relalg.Relation.compile_pred rel f with
            | Some g -> fun row -> g row = Relalg.Expr.tri_true
            | None ->
              fun row ->
                Relalg.Expr.eval_bool schema (Relalg.Relation.row rel row) f)
        in
        let contrib =
          match t.kind with
          | Count_star ->
            let c = t.coeff in
            fun _ -> c
          | Count a -> (
            let i = Relalg.Schema.index_of schema a in
            let c = t.coeff in
            match Relalg.Relation.column_at rel i with
            | Some col ->
              fun row -> if Relalg.Column.is_null col row then 0. else c
            | None ->
              fun row ->
                if
                  Relalg.Value.is_null
                    (Relalg.Tuple.get (Relalg.Relation.row rel row) i)
                then 0.
                else c)
          | Sum a -> (
            let i = Relalg.Schema.index_of schema a in
            let c = t.coeff in
            match Relalg.Relation.column_at rel i with
            | Some col ->
              let d = Relalg.Column.zeroed col in
              fun row -> c *. Array.unsafe_get d row
            | None -> (
              fun row ->
                match
                  Relalg.Value.to_float_opt
                    (Relalg.Tuple.get (Relalg.Relation.row rel row) i)
                with
                | Some v -> c *. v
                | None -> 0.))
          | Avg _ ->
            invalid_arg "Linform.coeff_rows: AVG term survived normalization"
        in
        fun row -> if keep row then contrib row else 0.)
      terms
  in
  match compiled with
  | [ f ] -> f
  | fs -> fun row -> List.fold_left (fun acc f -> acc +. f row) 0. fs

let term_attrs terms =
  let seen = Hashtbl.create 8 and out = ref [] in
  let push a =
    if not (Hashtbl.mem seen a) then begin
      Hashtbl.add seen a ();
      out := a :: !out
    end
  in
  List.iter
    (fun t ->
      (match t.kind with
      | Count_star -> ()
      | Count a | Sum a | Avg a -> push a);
      Option.iter (fun f -> List.iter push (Relalg.Expr.attrs f)) t.filter)
    terms;
  List.rev !out
