(** PaQL → ILP translation (Section 3 of the paper).

    [compile] turns an analyzed query into a {!spec}: per-constraint
    and per-objective coefficient functions closed over the schema,
    plus bound information. A spec is independent of any particular
    tuple set, which is exactly what SketchRefine needs — the same
    spec is instantiated over the full relation (DIRECT), over the
    representative relation (SKETCH, with per-group cardinality caps),
    and over single groups with bound offsets from the partial package
    (REFINE). *)

type compiled_constraint = {
  coeff : Relalg.Tuple.t -> float;  (** per-tuple coefficient *)
  coeff_rows : Relalg.Relation.t -> int -> float;
      (** row-indexed variant reading the relation's cached unboxed
          columns ({!Linform.coeff_rows}); bind the relation once,
          then apply per row id — this is the fast path the ILP column
          construction uses *)
  clo : float;
  chi : float;  (** [clo <= sum_i coeff(t_i) x_i <= chi] *)
  cname : string;
  cattrs : string list;
      (** attributes the constraint reads (aggregate arguments and
          subquery filters) — used by the IIS-guided attribute-dropping
          fallback of Section 4.4 *)
}

(** One [WITH PROBABILITY] constraint of the stochastic extension
    (arXiv:2103.06784): [slo <= sum <= shi] must hold with probability
    at least [sprob] over scenario realizations of the noisy
    attributes. Kept separate from [constraints] so the deterministic
    drivers are untouched; only {!Pkg.Stochastic} consumes these. *)
type stochastic_constraint = {
  sterms : Linform.term list;
      (** normalized linear form — the stochastic driver re-derives
          per-scenario coefficients from the terms *)
  scoeff_rows : Relalg.Relation.t -> int -> float;
      (** base-realization coefficients (same contract as
          [coeff_rows]) *)
  slo : float;
  shi : float;
  sprob : float;  (** required probability, in (0, 1] *)
  sname : string;  (** ["s0"], ["s1"], ... — indexed within this class *)
  sattrs : string list;
}

type spec = {
  query : Ast.query;
  schema : Relalg.Schema.t;
  where : Relalg.Expr.t option;
  constraints : compiled_constraint list;
  stochastic : stochastic_constraint list;
      (** probabilistic constraints; empty for deterministic queries *)
  expected_objective : bool;
      (** whether the objective wraps an [EXPECTED] expression (the
          compiled [objective] reads base-realization coefficients;
          the stochastic driver substitutes scenario means) *)
  objective : (Lp.Problem.sense * (Relalg.Tuple.t -> float) * float) option;
      (** sense, per-tuple coefficient, constant offset *)
  objective_rows : Relalg.Relation.t -> int -> float;
      (** row-indexed objective coefficients (constantly [0.] when the
          query has no objective) *)
  max_count : float;
      (** repetition cap per tuple: [K+1] for [REPEAT K], [infinity]
          otherwise *)
}

(** Whether the spec has any stochastic construct ([WITH PROBABILITY]
    constraints or an [EXPECTED] objective). Front-ends route such
    specs to the stochastic driver; deterministic drivers ignore the
    stochastic fields entirely. *)
val is_stochastic : spec -> bool

(** [compile schema q] analyzes and compiles the query. *)
val compile : Relalg.Schema.t -> Ast.query -> (spec, string) result

val compile_exn : Relalg.Schema.t -> Ast.query -> spec

(** [base_candidates spec r] applies the base (WHERE) predicate,
    returning the surviving row ids — the paper's base-relation
    computation, which eliminates variables fixed to zero. *)
val base_candidates : spec -> Relalg.Relation.t -> int array

(** [to_problem spec r ~candidates] builds the ILP with one integer
    variable per candidate row id.

    @param var_hi per-candidate repetition cap override (the sketch
    query's [|Gj| * (1+K)] bounds); defaults to [spec.max_count].
    @param offsets per-constraint contribution already consumed by a
    fixed partial package (the refine query's [p-bar] aggregates);
    constraint bounds are shifted by these amounts. *)
val to_problem :
  ?var_hi:(int -> float) ->
  ?offsets:float array ->
  spec ->
  Relalg.Relation.t ->
  candidates:int array ->
  Lp.Problem.t

(** [objective_sense spec] defaults to [Minimize] (vacuous objective)
    when the query has no objective clause. *)
val objective_sense : spec -> Lp.Problem.sense

(** [describe spec rel] renders an EXPLAIN-style summary: candidate
    counts after base-predicate elimination, the ILP dimensions, each
    global constraint's bounds and attributes, and the objective. *)
val describe : spec -> Relalg.Relation.t -> string
