exception Parse_error of string * int

type state = { toks : Lexer.spanned array; mutable at : int }

let peek st = st.toks.(st.at).tok
let peek2 st =
  if st.at + 1 < Array.length st.toks then st.toks.(st.at + 1).tok
  else Lexer.EOF
let pos st = st.toks.(st.at).pos
let advance st = st.at <- st.at + 1

let error st msg = raise (Parse_error (msg, pos st))

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Lexer.describe tok)
         (Lexer.describe (peek st)))

let expect_kw st kw = expect st (Lexer.KW kw)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (Lexer.KW kw)

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> error st ("expected identifier but found " ^ Lexer.describe t)

let number st =
  match peek st with
  | Lexer.NUMBER f ->
    advance st;
    f
  | t -> error st ("expected number but found " ^ Lexer.describe t)

(* Resolve a possibly-qualified attribute: [q.attr] must use one of the
   allowed qualifiers; the result is unqualified. *)
let attribute st ~allowed =
  let first = ident st in
  if peek st = Lexer.DOT then begin
    advance st;
    let attr = ident st in
    if List.exists (String.equal first) allowed then attr
    else
      error st
        (Printf.sprintf "unknown qualifier %S (expected one of: %s)" first
           (String.concat ", " allowed))
  end
  else first

(* ------------------------------------------------------------------ *)
(* Base (tuple-level) expressions, producing Relalg.Expr.t             *)
(* ------------------------------------------------------------------ *)

module E = Relalg.Expr

let rec base_or st ~allowed =
  let lhs = base_and st ~allowed in
  if accept_kw st "OR" then E.Or (lhs, base_or st ~allowed) else lhs

and base_and st ~allowed =
  let lhs = base_not st ~allowed in
  if accept_kw st "AND" then E.And (lhs, base_and st ~allowed) else lhs

and base_not st ~allowed =
  if accept_kw st "NOT" then E.Not (base_not st ~allowed)
  else base_cmp st ~allowed

and base_cmp st ~allowed =
  let lhs = base_add st ~allowed in
  match peek st with
  | Lexer.EQ ->
    advance st;
    E.Cmp (E.Eq, lhs, base_add st ~allowed)
  | Lexer.NEQ ->
    advance st;
    E.Cmp (E.Neq, lhs, base_add st ~allowed)
  | Lexer.LT ->
    advance st;
    E.Cmp (E.Lt, lhs, base_add st ~allowed)
  | Lexer.LE ->
    advance st;
    E.Cmp (E.Le, lhs, base_add st ~allowed)
  | Lexer.GT ->
    advance st;
    E.Cmp (E.Gt, lhs, base_add st ~allowed)
  | Lexer.GE ->
    advance st;
    E.Cmp (E.Ge, lhs, base_add st ~allowed)
  | Lexer.KW "BETWEEN" ->
    advance st;
    let lo = base_add st ~allowed in
    expect_kw st "AND";
    let hi = base_add st ~allowed in
    E.Between (lhs, lo, hi)
  | Lexer.KW "IS" ->
    advance st;
    if accept_kw st "NOT" then begin
      expect_kw st "NULL";
      E.IsNotNull lhs
    end
    else begin
      expect_kw st "NULL";
      E.IsNull lhs
    end
  | _ -> lhs

and base_add st ~allowed =
  let lhs = ref (base_mul st ~allowed) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PLUS ->
      advance st;
      lhs := E.Binop (E.Add, !lhs, base_mul st ~allowed)
    | Lexer.MINUS ->
      advance st;
      lhs := E.Binop (E.Sub, !lhs, base_mul st ~allowed)
    | _ -> continue := false
  done;
  !lhs

and base_mul st ~allowed =
  let lhs = ref (base_unary st ~allowed) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.STAR ->
      advance st;
      lhs := E.Binop (E.Mul, !lhs, base_unary st ~allowed)
    | Lexer.SLASH ->
      advance st;
      lhs := E.Binop (E.Div, !lhs, base_unary st ~allowed)
    | _ -> continue := false
  done;
  !lhs

and base_unary st ~allowed =
  if accept st Lexer.MINUS then E.Neg (base_unary st ~allowed)
  else base_primary st ~allowed

and base_primary st ~allowed =
  match peek st with
  | Lexer.NUMBER f ->
    advance st;
    E.Const (Relalg.Value.Float f)
  | Lexer.STRING s ->
    advance st;
    E.Const (Relalg.Value.Str s)
  | Lexer.KW "TRUE" ->
    advance st;
    E.Const (Relalg.Value.Bool true)
  | Lexer.KW "FALSE" ->
    advance st;
    E.Const (Relalg.Value.Bool false)
  | Lexer.KW "NULL" ->
    advance st;
    E.Const Relalg.Value.Null
  | Lexer.IDENT _ -> E.Attr (attribute st ~allowed)
  | Lexer.LPAREN ->
    advance st;
    let e = base_or st ~allowed in
    expect st Lexer.RPAREN;
    e
  | t -> error st ("unexpected " ^ Lexer.describe t ^ " in expression")

(* ------------------------------------------------------------------ *)
(* Global (package-level) expressions and predicates                  *)
(* ------------------------------------------------------------------ *)

let agg_kw = function
  | Lexer.KW ("COUNT" | "SUM" | "AVG" | "MIN" | "MAX" as k) -> Some k
  | _ -> None

(* COUNT(*) | COUNT(P.*) | SUM(P.attr) | SUM(attr) ... *)
let aggregate st ~pkg =
  let kw =
    match agg_kw (peek st) with
    | Some k ->
      advance st;
      k
    | None -> error st "expected aggregate function"
  in
  expect st Lexer.LPAREN;
  let arg =
    match peek st with
    | Lexer.STAR ->
      advance st;
      None
    | Lexer.IDENT name when peek2 st = Lexer.DOT ->
      (* qualified: P.* or P.attr *)
      advance st;
      advance st;
      if not (String.equal name pkg) then
        error st
          (Printf.sprintf "unknown qualifier %S (expected package %S)" name pkg);
      if peek st = Lexer.STAR then begin
        advance st;
        None
      end
      else Some (ident st)
    | Lexer.IDENT _ -> Some (ident st)
    | t -> error st ("expected attribute or '*' but found " ^ Lexer.describe t)
  in
  expect st Lexer.RPAREN;
  match kw, arg with
  | "COUNT", None -> Ast.Count_star
  | "COUNT", Some a -> Ast.Count a
  | "SUM", Some a -> Ast.Sum a
  | "AVG", Some a -> Ast.Avg a
  | "MIN", Some a -> Ast.Min a
  | "MAX", Some a -> Ast.Max a
  | k, None -> error st (k ^ " requires an attribute argument")
  | _ -> assert false

(* (SELECT agg FROM P [WHERE pred]) — the opening paren is consumed. *)
let subquery st ~pkg =
  expect_kw st "SELECT";
  let kind = aggregate st ~pkg in
  expect_kw st "FROM";
  let from = ident st in
  if not (String.equal from pkg) then
    error st
      (Printf.sprintf "subqueries must select FROM the package %S, got %S" pkg
         from);
  let filter =
    if accept_kw st "WHERE" then Some (base_or st ~allowed:[ pkg ]) else None
  in
  expect st Lexer.RPAREN;
  Ast.Agg (kind, filter)

let rec gexpr st ~pkg =
  let lhs = ref (gterm st ~pkg) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PLUS ->
      advance st;
      lhs := Ast.Add (!lhs, gterm st ~pkg)
    | Lexer.MINUS ->
      advance st;
      lhs := Ast.Subtract (!lhs, gterm st ~pkg)
    | _ -> continue := false
  done;
  !lhs

and gterm st ~pkg =
  let lhs = ref (gunary st ~pkg) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.STAR ->
      advance st;
      lhs := Ast.Mult (!lhs, gunary st ~pkg)
    | Lexer.SLASH ->
      advance st;
      lhs := Ast.Divide (!lhs, gunary st ~pkg)
    | _ -> continue := false
  done;
  !lhs

and gunary st ~pkg =
  if accept st Lexer.MINUS then Ast.Negate (gunary st ~pkg)
  else if accept_kw st "EXPECTED" then Ast.Expected (gunary st ~pkg)
  else gprimary st ~pkg

and gprimary st ~pkg =
  match peek st with
  | Lexer.NUMBER f ->
    advance st;
    Ast.Num f
  | Lexer.KW ("COUNT" | "SUM" | "AVG" | "MIN" | "MAX") ->
    Ast.Agg (aggregate st ~pkg, None)
  | Lexer.LPAREN ->
    advance st;
    if peek st = Lexer.KW "SELECT" then subquery st ~pkg
    else begin
      let e = gexpr st ~pkg in
      expect st Lexer.RPAREN;
      e
    end
  | t -> error st ("unexpected " ^ Lexer.describe t ^ " in global expression")

let gcomparison st ~pkg =
  let lhs = gexpr st ~pkg in
  let leaf =
    match peek st with
    | Lexer.EQ ->
      advance st;
      Ast.Gcmp (Ast.Eq, lhs, gexpr st ~pkg)
    | Lexer.LE ->
      advance st;
      Ast.Gcmp (Ast.Le, lhs, gexpr st ~pkg)
    | Lexer.GE ->
      advance st;
      Ast.Gcmp (Ast.Ge, lhs, gexpr st ~pkg)
    | Lexer.LT ->
      advance st;
      Ast.Gcmp (Ast.Lt, lhs, gexpr st ~pkg)
    | Lexer.GT ->
      advance st;
      Ast.Gcmp (Ast.Gt, lhs, gexpr st ~pkg)
    | Lexer.KW "BETWEEN" ->
      advance st;
      let lo = gexpr st ~pkg in
      expect_kw st "AND";
      let hi = gexpr st ~pkg in
      Ast.Gbetween (lhs, lo, hi)
    | t ->
      error st ("expected comparison or BETWEEN but found " ^ Lexer.describe t)
  in
  if accept_kw st "WITH" then begin
    expect_kw st "PROBABILITY";
    let p = number st in
    match leaf with
    | Ast.Gcmp (cmp, a, b) -> Ast.Gprob (cmp, a, b, p)
    | _ -> error st "WITH PROBABILITY only applies to comparisons, not BETWEEN"
  end
  else leaf

let rec gpred st ~pkg =
  let lhs = gcomparison st ~pkg in
  if accept_kw st "AND" then Ast.Gand (lhs, gpred st ~pkg) else lhs

(* ------------------------------------------------------------------ *)
(* Query                                                              *)
(* ------------------------------------------------------------------ *)

let query st =
  expect_kw st "SELECT";
  expect_kw st "PACKAGE";
  expect st Lexer.LPAREN;
  let pkg_arg = ident st in
  expect st Lexer.RPAREN;
  let package_name = if accept_kw st "AS" then ident st else "P" in
  expect_kw st "FROM";
  let rel_name = ident st in
  let rel_alias =
    if accept_kw st "AS" then ident st
    else match peek st with Lexer.IDENT _ -> ident st | _ -> rel_name
  in
  if not (String.equal pkg_arg rel_alias || String.equal pkg_arg rel_name) then
    error st
      (Printf.sprintf "PACKAGE(%s) does not match the FROM alias %S" pkg_arg
         rel_alias);
  let repeat =
    if accept_kw st "REPEAT" then begin
      let f = number st in
      let k = int_of_float f in
      if float_of_int k <> f || k < 0 then
        error st "REPEAT requires a non-negative integer"
      else Some k
    end
    else None
  in
  let where =
    if accept_kw st "WHERE" then
      Some (base_or st ~allowed:[ rel_alias; rel_name ])
    else None
  in
  let such_that =
    if accept_kw st "SUCH" then begin
      expect_kw st "THAT";
      Some (gpred st ~pkg:package_name)
    end
    else None
  in
  let objective =
    if accept_kw st "MINIMIZE" then
      Some (Ast.Minimize (gexpr st ~pkg:package_name))
    else if accept_kw st "MAXIMIZE" then
      Some (Ast.Maximize (gexpr st ~pkg:package_name))
    else None
  in
  expect st Lexer.EOF;
  {
    Ast.package_name;
    rel_name;
    rel_alias;
    repeat;
    where;
    such_that;
    objective;
  }

let parse_exn input =
  let st = { toks = Lexer.tokenize input; at = 0 } in
  query st

let parse input =
  match parse_exn input with
  | q -> Ok q
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Lexer.Lex_error (msg, pos) ->
    Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
