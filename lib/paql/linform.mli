(** Normalization of global expressions and predicates into linear
    forms over per-tuple coefficients — the core of the PaQL → ILP
    translation rules (Section 3.1 of the paper).

    A linear form is [sum_k coeff_k * term_k + const], where each term
    is a package aggregate (COUNT/SUM/AVG, optionally filtered by a
    subquery predicate). Constraints whose forms contain an AVG term
    are rewritten by multiplying through by the package cardinality:
    [AVG(a) <= v  ==>  sum_i (a_i - v) x_i <= 0]. *)

type term_kind =
  | Count_star
  | Count of string
  | Sum of string
  | Avg of string  (** only transient: eliminated by the rewrite *)

type term = { kind : term_kind; filter : Relalg.Expr.t option; coeff : float }

type t = { terms : term list; const : float }

(** [of_gexpr e] normalizes a global expression, enforcing linearity:
    products need a constant side, divisors must be constants, MIN/MAX
    are rejected. *)
val of_gexpr : Ast.gexpr -> (t, string) result

(** One normalized global constraint: [lo <= sum terms <= hi], with all
    AVG terms already rewritten away. *)
type constr = { cterms : term list; lo : float; hi : float }

(** [of_conjunct leaf] normalizes a single [Gand]-free conjunct. A
    probabilistic comparison ([Gprob]) lowers to the same linear form as
    its plain counterpart — the probability is carried separately by
    {!Translate}. [Gbetween] may desugar into two constraints. *)
val of_conjunct : Ast.gpred -> (constr list, string) result

(** [of_gpred gp] normalizes each conjunct. Strict comparisons are
    treated as non-strict (documented PaQL deviation). *)
val of_gpred : Ast.gpred -> (constr list, string) result

(** [of_objective o] is the objective's linear form and sense. AVG is
    rejected in objectives (the cardinality rewrite does not preserve
    optimality there). *)
val of_objective :
  Ast.objective -> (Lp.Problem.sense * term list * float, string) result

(** [coeff_fn schema terms] compiles the per-tuple coefficient function
    [t -> sum_k coeff_k * contribution_k(t)].
    @raise Invalid_argument if an AVG term survived normalization. *)
val coeff_fn :
  Relalg.Schema.t -> term list -> Relalg.Tuple.t -> float

(** [coeff_rows schema rel terms] — the row-indexed, vectorized variant
    of {!coeff_fn}: coefficients read from [rel]'s cached unboxed
    columns, term filters lowered via [Expr.compile] when possible.
    Build once per relation, apply per row id.
    @raise Invalid_argument if an AVG term survived normalization. *)
val coeff_rows :
  Relalg.Schema.t -> Relalg.Relation.t -> term list -> int -> float

(** Attributes mentioned by the terms (aggregate arguments + filters). *)
val term_attrs : term list -> string list
