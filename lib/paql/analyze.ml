let is_numeric = function
  | Relalg.Value.TInt | Relalg.Value.TFloat -> true
  | Relalg.Value.TStr | Relalg.Value.TBool -> false

let check_terms schema errs terms =
  List.iter
    (fun (t : Linform.term) ->
      (match t.kind with
      | Linform.Count_star -> ()
      | Linform.Count a -> (
        match Relalg.Schema.index_of_opt schema a with
        | Some _ -> ()
        | None -> errs := Printf.sprintf "unknown attribute %S in COUNT" a :: !errs)
      | Linform.Sum a | Linform.Avg a -> (
        match Relalg.Schema.index_of_opt schema a with
        | None ->
          errs := Printf.sprintf "unknown attribute %S in aggregate" a :: !errs
        | Some i ->
          if not (is_numeric (Relalg.Schema.attr_at schema i).ty) then
            errs :=
              Printf.sprintf "attribute %S is not numeric" a :: !errs));
      Option.iter
        (fun f ->
          match Relalg.Expr.check schema f with
          | Ok () -> ()
          | Error msg ->
            errs := ("in subquery filter: " ^ msg) :: !errs)
        t.filter)
    terms

let check schema (q : Ast.query) =
  let errs = ref [] in
  Option.iter
    (fun w ->
      match Relalg.Expr.check schema w with
      | Ok () -> ()
      | Error msg -> errs := ("in WHERE clause: " ^ msg) :: !errs)
    q.where;
  Option.iter
    (fun gp ->
      match Linform.of_gpred gp with
      | Error msg -> errs := ("in SUCH THAT clause: " ^ msg) :: !errs
      | Ok constraints ->
        List.iter
          (fun (c : Linform.constr) -> check_terms schema errs c.cterms)
          constraints)
    q.such_that;
  (* Stochastic extension: probability bounds must be meaningful, and
     equality under continuous noise holds with probability zero. *)
  Option.iter
    (fun gp ->
      List.iter
        (function
          | Ast.Gprob (cmp, _, _, p) ->
            if not (p > 0. && p <= 1.) then
              errs :=
                Printf.sprintf
                  "WITH PROBABILITY %g is outside (0, 1]" p
                :: !errs;
            (match cmp with
            | Ast.Eq ->
              errs :=
                "WITH PROBABILITY cannot qualify an equality (it holds \
                 with probability zero under continuous noise); use <= \
                 or >="
                :: !errs
            | Ast.Le | Ast.Ge | Ast.Lt | Ast.Gt -> ())
          | Ast.Gcmp _ | Ast.Gbetween _ | Ast.Gand _ -> ())
        (Ast.conjuncts gp))
    q.such_that;
  Option.iter
    (fun o ->
      match Linform.of_objective o with
      | Error msg -> errs := ("in objective clause: " ^ msg) :: !errs
      | Ok (_, terms, _) -> check_terms schema errs terms)
    q.objective;
  match List.rev !errs with [] -> Ok () | errors -> Error errors

let check_exn schema q =
  match check schema q with
  | Ok () -> ()
  | Error (e :: _) -> invalid_arg ("PaQL analysis: " ^ e)
  | Error [] -> assert false
