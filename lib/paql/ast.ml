type agg_kind =
  | Count_star
  | Count of string
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type gexpr =
  | Num of float
  | Agg of agg_kind * Relalg.Expr.t option
  | Add of gexpr * gexpr
  | Subtract of gexpr * gexpr
  | Mult of gexpr * gexpr
  | Divide of gexpr * gexpr
  | Negate of gexpr
  | Expected of gexpr

type gcmp = Le | Ge | Eq | Lt | Gt

type gpred =
  | Gcmp of gcmp * gexpr * gexpr
  | Gbetween of gexpr * gexpr * gexpr
  | Gprob of gcmp * gexpr * gexpr * float
  | Gand of gpred * gpred

type objective = Minimize of gexpr | Maximize of gexpr

type query = {
  package_name : string;
  rel_name : string;
  rel_alias : string;
  repeat : int option;
  where : Relalg.Expr.t option;
  such_that : gpred option;
  objective : objective option;
}

let conjuncts gp =
  let rec go acc = function
    | Gand (a, b) -> go (go acc a) b
    | (Gcmp _ | Gbetween _ | Gprob _) as leaf -> leaf :: acc
  in
  List.rev (go [] gp)

let add_unique seen out name =
  if not (Hashtbl.mem seen name) then begin
    Hashtbl.add seen name ();
    out := name :: !out
  end

let collect_gexpr seen out e =
  let rec go = function
    | Num _ -> ()
    | Agg (k, filter) ->
      (match k with
      | Count_star -> ()
      | Count a | Sum a | Avg a | Min a | Max a -> add_unique seen out a);
      Option.iter
        (fun f -> List.iter (add_unique seen out) (Relalg.Expr.attrs f))
        filter
    | Add (a, b) | Subtract (a, b) | Mult (a, b) | Divide (a, b) ->
      go a;
      go b
    | Negate a | Expected a -> go a
  in
  go e

let collect_gpred seen out gp =
  let rec go = function
    | Gcmp (_, a, b) | Gprob (_, a, b, _) ->
      collect_gexpr seen out a;
      collect_gexpr seen out b
    | Gbetween (a, b, c) ->
      collect_gexpr seen out a;
      collect_gexpr seen out b;
      collect_gexpr seen out c
    | Gand (a, b) ->
      go a;
      go b
  in
  go gp

let global_attrs q =
  let seen = Hashtbl.create 8 and out = ref [] in
  Option.iter (collect_gpred seen out) q.such_that;
  Option.iter
    (fun o ->
      let e = match o with Minimize e | Maximize e -> e in
      collect_gexpr seen out e)
    q.objective;
  List.rev !out

let rec has_expected = function
  | Num _ | Agg _ -> false
  | Add (a, b) | Subtract (a, b) | Mult (a, b) | Divide (a, b) ->
    has_expected a || has_expected b
  | Negate a -> has_expected a
  | Expected _ -> true

let is_stochastic q =
  let pred_stochastic gp =
    let rec go = function
      | Gprob _ -> true
      | Gcmp (_, a, b) -> has_expected a || has_expected b
      | Gbetween (a, b, c) ->
        has_expected a || has_expected b || has_expected c
      | Gand (a, b) -> go a || go b
    in
    go gp
  in
  Option.fold ~none:false ~some:pred_stochastic q.such_that
  || Option.fold ~none:false
       ~some:(fun o ->
         let e = match o with Minimize e | Maximize e -> e in
         has_expected e)
       q.objective

let all_attrs q =
  let seen = Hashtbl.create 8 and out = ref [] in
  Option.iter
    (fun w -> List.iter (add_unique seen out) (Relalg.Expr.attrs w))
    q.where;
  Option.iter (collect_gpred seen out) q.such_that;
  Option.iter
    (fun o ->
      let e = match o with Minimize e | Maximize e -> e in
      collect_gexpr seen out e)
    q.objective;
  List.rev !out
