(** Dynamic Low Variance partitioning (arXiv:2307.02860 §4).

    The alternative to {!Quad_tree}: a violating group is cut into
    equal-size contiguous slices of its members sorted along the
    attribute with the highest range-normalized variance, recursively,
    until every group satisfies the size threshold [tau] and the radius
    condition. Equal-size slices keep groups near the size target and
    the variance-driven dimension choice shrinks within-group spread
    fastest on both concentrated and heavy-tailed attributes.

    Deterministic by construction: member statistics are reduced over
    fixed-size chunks merged in chunk order (bitwise identical for any
    [PKGQ_SCAN_WORKERS]), and slicing sorts on [(value, row id)] — a
    total order. *)

(** [create ?radius ~tau ~attrs rel] partitions [rel] with the DLV
    recursion. Same contract as {!Partition.create}: NULL/NaN read as
    [0.], representatives are group means.
    @raise Invalid_argument if [tau < 1] or [attrs] is empty/invalid. *)
val create :
  ?radius:Partition.radius_spec ->
  tau:int ->
  attrs:string list ->
  Relalg.Relation.t ->
  Partition.t

(** [split ?radius ?ranges ~tau cols members] runs the DLV recursion on
    a single member set over {!Partition.numeric_columns} data,
    returning member sets that each satisfy [tau] and [radius]. Exposed
    for the hierarchy builder, which refines each parent group in
    place; pass [ranges] (from {!ranges}) to avoid recomputing the
    global normalization per call. *)
val split :
  ?radius:Partition.radius_spec ->
  ?ranges:float array ->
  tau:int ->
  float array array ->
  int array ->
  int array list

(** Per-dimension global ranges ([max - min] over all rows, [1.] for a
    constant column) — the variance normalization used by {!split}. *)
val ranges : float array array -> float array

(** [variance_cost cols p] — mean per-tuple within-group
    range-normalized variance (summed over dimensions): the quantity
    DLV greedily minimizes. Lower is better; used to compare
    partitioners at equal [tau]. *)
val variance_cost : float array array -> Partition.t -> float
