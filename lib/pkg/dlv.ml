(* Dynamic Low Variance partitioning (arXiv:2307.02860 §4).

   Where the quad tree splits a violating group geometrically around
   its centroid, DLV splits it *statistically*: pick the attribute with
   the highest range-normalized variance among the group's members and
   cut the members into equal-size contiguous slices of the sorted
   order along that attribute. Equal-size slices keep every group near
   the size target (no starved quadrants), and cutting the dimension
   that actually spreads drives within-group variance down fastest on
   both concentrated and heavy-tailed data.

   Determinism: member statistics are reduced over fixed-size chunks
   merged in chunk order (the [Relalg.Scan] idiom, so any
   [PKGQ_SCAN_WORKERS] setting yields bitwise-identical sums), and the
   sort key is [(value, row id)] — a total order. *)

let max_slices = 8

(* ------------------------------------------------------------------ *)
(* Chunked parallel per-dimension statistics                          *)
(* ------------------------------------------------------------------ *)

type dim_stats = {
  sum : float array;
  sumsq : float array;
  mn : float array;
  mx : float array;
}

let stats_chunk cols members lo hi =
  let k = Array.length cols in
  let sum = Array.make k 0.
  and sumsq = Array.make k 0.
  and mn = Array.make k infinity
  and mx = Array.make k neg_infinity in
  for i = lo to hi - 1 do
    let row = Array.unsafe_get members i in
    for d = 0 to k - 1 do
      let v = Array.unsafe_get (Array.unsafe_get cols d) row in
      sum.(d) <- sum.(d) +. v;
      sumsq.(d) <- sumsq.(d) +. (v *. v);
      if v < mn.(d) then mn.(d) <- v;
      if v > mx.(d) then mx.(d) <- v
    done
  done;
  { sum; sumsq; mn; mx }

let merge_stats a b =
  let k = Array.length a.sum in
  for d = 0 to k - 1 do
    a.sum.(d) <- a.sum.(d) +. b.sum.(d);
    a.sumsq.(d) <- a.sumsq.(d) +. b.sumsq.(d);
    if b.mn.(d) < a.mn.(d) then a.mn.(d) <- b.mn.(d);
    if b.mx.(d) > a.mx.(d) then a.mx.(d) <- b.mx.(d)
  done

(* Per-chunk partials are computed by workers striping over chunks,
   then merged sequentially in chunk order: bitwise identical for any
   worker count. *)
let member_stats cols members =
  let n = Array.length members in
  let k = Array.length cols in
  let chunk = Relalg.Scan.chunk_size () in
  let nchunks = (n + chunk - 1) / chunk in
  let workers = max 1 (min (Relalg.Scan.default_workers ()) nchunks) in
  let partials =
    if workers = 1 || nchunks <= 1 then
      Array.init nchunks (fun c ->
          stats_chunk cols members (c * chunk) (min n ((c + 1) * chunk)))
    else begin
      let out = Array.make nchunks None in
      let worker w =
        let c = ref w in
        while !c < nchunks do
          out.(!c) <-
            Some
              (stats_chunk cols members (!c * chunk) (min n ((!c + 1) * chunk)));
          c := !c + workers
        done
      in
      let doms =
        Array.init (workers - 1) (fun i ->
            Domain.spawn (fun () -> worker (i + 1)))
      in
      worker 0;
      Array.iter Domain.join doms;
      Array.map (function Some s -> s | None -> assert false) out
    end
  in
  let acc =
    {
      sum = Array.make k 0.;
      sumsq = Array.make k 0.;
      mn = Array.make k infinity;
      mx = Array.make k neg_infinity;
    }
  in
  Array.iter (fun p -> merge_stats acc p) partials;
  acc

(* Range-normalized variance of each dimension: Var[v] / range^2 with
   [range] taken over the whole relation, so dimensions on different
   scales compete fairly (the DLV paper's normalization). *)
let normalized_variances ~ranges cols members =
  let n = float_of_int (Array.length members) in
  let st = member_stats cols members in
  Array.mapi
    (fun d _ ->
      let mean = st.sum.(d) /. n in
      let var = Float.max 0. ((st.sumsq.(d) /. n) -. (mean *. mean)) in
      let r = ranges.(d) in
      if r > 0. then var /. (r *. r) else 0.)
    cols

(* Global per-dimension ranges (max - min over all rows), or 1. for a
   constant column so normalization never divides by zero. *)
let global_ranges cols =
  let n = if Array.length cols = 0 then 0 else Array.length cols.(0) in
  let all = Array.init n Fun.id in
  let st = member_stats cols all in
  Array.mapi
    (fun d _ ->
      let r = st.mx.(d) -. st.mn.(d) in
      if r > 0. && Float.is_finite r then r else 1.)
    cols

(* ------------------------------------------------------------------ *)
(* Splitting                                                          *)
(* ------------------------------------------------------------------ *)

(* Equal-size contiguous slices of [members] sorted on dimension [d]
   (ties broken by row id: a total order, so the slicing is
   deterministic under any duplicate values). *)
let slice_on cols d ~slices members =
  let col = cols.(d) in
  let sorted = Array.copy members in
  Array.sort
    (fun a b ->
      let c = Float.compare col.(a) col.(b) in
      if c <> 0 then c else Int.compare a b)
    sorted;
  let n = Array.length sorted in
  let base = n / slices and extra = n mod slices in
  let out = ref [] in
  let pos = ref 0 in
  for s = 0 to slices - 1 do
    let len = base + if s < extra then 1 else 0 in
    if len > 0 then out := Array.sub sorted !pos len :: !out;
    pos := !pos + len
  done;
  List.rev !out

(* Coincident members (zero variance in every dimension): chunk by
   [tau] — radius is zero, so any grouping satisfies both conditions. *)
let chunk_by tau members =
  let n = Array.length members in
  let pieces = (n + tau - 1) / tau in
  List.init pieces (fun p ->
      Array.sub members (p * tau) (min tau (n - (p * tau))))

let rec split_set ~tau ~radius ~ranges cols members acc =
  let n = Array.length members in
  if n = 0 then acc
  else
    let centroid, rad = Partition.centroid_radius cols members in
    if n <= tau && Partition.radius_ok radius ~centroid ~radius:rad then
      members :: acc
    else begin
      let vars = normalized_variances ~ranges cols members in
      let best = ref 0 in
      Array.iteri (fun d v -> if v > vars.(!best) then best := d) vars;
      if vars.(!best) <= 0. then
        (* indistinguishable tuples: radius 0, only the size condition
           can be violated *)
        List.rev_append (chunk_by tau members) acc
      else
        let slices = min max_slices (max 2 ((n + tau - 1) / tau)) in
        let parts = slice_on cols !best ~slices members in
        (* A degenerate cut (everything in one slice) cannot happen with
           equal-size slicing and n >= 2, so the recursion terminates. *)
        List.fold_left
          (fun acc part -> split_set ~tau ~radius ~ranges cols part acc)
          acc parts
    end

let ranges = global_ranges

let split ?(radius = Partition.No_radius) ?ranges:rs ~tau cols members =
  if tau < 1 then invalid_arg "Dlv.split: tau < 1";
  let ranges = match rs with Some r -> r | None -> global_ranges cols in
  List.rev (split_set ~tau ~radius ~ranges cols members [])

let create ?(radius = Partition.No_radius) ~tau ~attrs rel =
  if tau < 1 then invalid_arg "Dlv.create: tau < 1";
  if attrs = [] then invalid_arg "Dlv.create: no attributes";
  let cols = Partition.numeric_columns rel attrs in
  let n = Relalg.Relation.cardinality rel in
  let members = Array.init n Fun.id in
  Partition.of_groups ~attrs rel (split ~radius ~tau cols members)

(* ------------------------------------------------------------------ *)
(* Quality metric                                                     *)
(* ------------------------------------------------------------------ *)

(* Mean per-tuple within-group normalized variance: the quantity DLV
   greedily minimizes, used by tests and benches to compare
   partitioners at equal tau. Lower is better. *)
let variance_cost cols (p : Partition.t) =
  let ranges = global_ranges cols in
  let total = ref 0. and rows = ref 0 in
  Array.iter
    (fun (g : Partition.group) ->
      let nv = normalized_variances ~ranges cols g.Partition.members in
      let s = Array.fold_left ( +. ) 0. nv in
      total := !total +. (s *. float_of_int (Array.length g.Partition.members));
      rows := !rows + Array.length g.Partition.members)
    p.Partition.groups;
  if !rows = 0 then 0. else !total /. float_of_int !rows
