let run ?limits ?warm_basis ?basis_out spec rel =
  let start = Unix.gettimeofday () in
  let counters = Eval.fresh_counters () in
  let finish status package objective =
    Eval.report ~status ~package ~objective
      ~wall_time:(Unix.gettimeofday () -. start)
      ~counters
  in
  let evaluate () =
    let candidates = Paql.Translate.base_candidates spec rel in
    let problem = Paql.Translate.to_problem spec rel ~candidates in
    let result =
      Faults.solve ?limits ?warm:warm_basis ?basis_out ~stage:Eval.Direct
        problem
    in
    Eval.bump counters result;
    let package_of (sol : Ilp.Branch_bound.sol) =
      Package.of_solution rel ~candidates sol.Ilp.Branch_bound.x
    in
    match result with
    | Ilp.Branch_bound.Optimal (sol, _) ->
      let p = package_of sol in
      finish Eval.Optimal (Some p) (Some (Package.objective spec p))
    | Ilp.Branch_bound.Feasible (sol, _, gap) ->
      let p = package_of sol in
      finish (Eval.Feasible gap) (Some p) (Some (Package.objective spec p))
    | Ilp.Branch_bound.Infeasible _ -> finish Eval.Infeasible None None
    | Ilp.Branch_bound.Unbounded _ ->
      finish
        (Eval.failed ~stage:Eval.Direct
           (Eval.Solver_error "unbounded objective"))
        None None
    | Ilp.Branch_bound.Limit st ->
      finish (Eval.Failed (Eval.limit_failure ~stage:Eval.Direct st)) None None
  in
  (* The resilience contract: a report, never an exception. *)
  try evaluate () with
  | Faults.Injected msg ->
    finish (Eval.failed ~stage:Eval.Direct (Eval.Solver_error msg)) None None
  | e ->
    finish
      (Eval.failed ~stage:Eval.Direct (Eval.Solver_error (Printexc.to_string e)))
      None None
