(** The SKETCH step (Section 4.2.1): solve the package query over the
    representative relation, with per-representative multiplicity caps
    of [|Gj| * (1 + K)] accounting for the repetition constraint. *)

(** Evaluation context shared by SKETCH and REFINE: per-group candidate
    rows (base-predicate filtered) and representative caps. Groups
    whose candidates were all filtered out get a zero cap, so their
    representatives can never be picked. *)
type ctx = {
  spec : Paql.Translate.spec;
  rel : Relalg.Relation.t;
  part : Partition.t;
  cand : int array array;  (** per-group candidate row ids *)
  caps : float array;      (** per-group sketch multiplicity cap *)
  coeff_rel : (int -> float) array;
      (** per-constraint row-coefficient accessors over [rel], bound to
          its cached columns once so REFINE's repeated partial-package
          aggregations avoid per-tuple interpretation *)
  coeff_reps : (int -> float) array;
      (** same, over the representative relation [part.reps] *)
}

val make_ctx :
  Paql.Translate.spec -> Relalg.Relation.t -> Partition.t -> ctx

type result =
  | Sketched of float array
      (** per-group multiplicity of each representative *)
  | Sketch_infeasible
  | Sketch_failed of Eval.failure

(** [run ?limits ?deadline ?warm ?basis_out ?stage ctx counters] solves
    the sketch query [Q[R~]] through {!Faults.solve}; [deadline] clamps
    the ILP's time budget to the remaining global budget. [warm] seeds
    the root LP from a saved basis and [basis_out] receives the root's
    optimal basis (the progressive driver threads them level to level —
    a basis whose dimensions no longer match degrades to a cold solve
    inside the simplex). [stage] (default {!Eval.Sketch}) tags
    fault-injection matching and failure context. *)
val run :
  ?limits:Ilp.Branch_bound.limits ->
  ?deadline:float ->
  ?warm:Lp.Simplex.Basis.t ->
  ?basis_out:Lp.Simplex.Basis.t option ref ->
  ?stage:Eval.stage ->
  ctx ->
  Eval.counters ->
  result

(** [group_counts ctx x ~groups] maps an ILP solution over the listed
    group ids back to a per-group (all groups) count array. *)
val group_counts : ctx -> float array -> groups:int array -> float array
