(** SKETCHREFINE (Algorithm 1): sketch over the representatives, then
    refine group by group, with the false-infeasibility fallback
    strategies of Section 4.4.

    When the sketch query or the greedy backtracking refinement report
    (possibly false) infeasibility, the configured fallbacks run in
    order:

    - {b Hybrid_sketch} (4.4.1): one group contributes original tuples
      while the rest stay represented, tried group by group — the
      strategy the paper's experiments use.
    - {b Drop_attributes} (4.4.3): extract an IIS of the sketch ILP,
      drop the partitioning attributes implicated by it, re-partition
      coarser and retry (groups merge, so previously infeasible
      sub-queries can become feasible).
    - {b Merge_groups} (4.4.4): iteratively merge the smallest groups
      pairwise and retry; in the limit of one group the refine/hybrid
      query {e is} the original problem, so this brute-force ladder is
      complete for feasible queries (at DIRECT's cost).

    Reporting [Infeasible] after the fallbacks may still be a false
    negative, with the low, selectivity-bounded probability of
    Theorem 4. *)

type fallback = Hybrid_sketch | Drop_attributes | Merge_groups

type options = {
  limits : Ilp.Branch_bound.limits;  (** per-ILP-call solver budget *)
  max_seconds : float;               (** overall wall-clock budget *)
  fallbacks : fallback list;
      (** tried in order on false infeasibility; default
          [[Hybrid_sketch]], matching the paper's setup *)
  propagate_deadline : bool;
      (** (default [true]) thread the absolute deadline
          [start + max_seconds] into every ILP call, clamping each
          per-call [max_seconds] to the remaining budget — so no single
          ILP can blow past the global cap. [false] restores the legacy
          behaviour of polling the deadline only between pipeline
          steps, leaving per-call limits static. *)
}

val default_options : options

(** [run ?options spec rel partition] evaluates the compiled query.
    The partition must have been built over [rel] (or a superset
    restricted with {!Partition.restrict_prefix}). *)
val run :
  ?options:options ->
  Paql.Translate.spec ->
  Relalg.Relation.t ->
  Partition.t ->
  Eval.report
