type radius_spec =
  | No_radius
  | Absolute of float
  | Theorem of { epsilon : float; maximize : bool }

type group = {
  members : int array;
  centroid : float array;
  radius : float;
}

type t = {
  attrs : string list;
  groups : group array;
  gid_of_row : int array;
  reps : Relalg.Relation.t;
}

let num_groups p = Array.length p.groups

let gamma ~maximize ~epsilon =
  if maximize then epsilon else epsilon /. (1. +. epsilon)

(* Per-group radius limit under the given spec. *)
let radius_ok spec ~centroid ~radius =
  match spec with
  | No_radius -> true
  | Absolute omega -> radius <= omega
  | Theorem { epsilon; maximize } ->
    let g = gamma ~maximize ~epsilon in
    let min_abs =
      Array.fold_left (fun acc c -> Float.min acc (Float.abs c)) infinity
        centroid
    in
    radius <= g *. min_abs

(* Shared, cache-backed columns: the relation materializes each numeric
   attribute once (NULLs as 0., the historical convention here) and
   every partitioner call reuses the same unboxed arrays. Callers must
   treat the result as read-only. *)
let numeric_columns rel attrs =
  let schema = Relalg.Relation.schema rel in
  List.iter
    (fun a ->
      match Relalg.Schema.index_of_opt schema a with
      | None -> invalid_arg ("Partition: unknown attribute " ^ a)
      | Some i -> (
        match (Relalg.Schema.attr_at schema i).ty with
        | Relalg.Value.TInt | Relalg.Value.TFloat -> ()
        | Relalg.Value.TStr | Relalg.Value.TBool ->
          invalid_arg ("Partition: non-numeric attribute " ^ a)))
    attrs;
  Array.of_list
    (List.map
       (fun a -> Relalg.Column.zeroed (Relalg.Relation.column_exn rel a))
       attrs)

let centroid_radius cols members =
  let k = Array.length cols in
  let m = Array.length members in
  let centroid = Array.make k 0. in
  let n = float_of_int m in
  for d = 0 to k - 1 do
    let col = Array.unsafe_get cols d in
    let s = ref 0. in
    for i = 0 to m - 1 do
      s := !s +. Array.unsafe_get col (Array.unsafe_get members i)
    done;
    Array.unsafe_set centroid d (!s /. n)
  done;
  let radius = ref 0. in
  for d = 0 to k - 1 do
    let col = Array.unsafe_get cols d in
    let c = Array.unsafe_get centroid d in
    for i = 0 to m - 1 do
      let dist =
        Float.abs (Array.unsafe_get col (Array.unsafe_get members i) -. c)
      in
      if dist > !radius then radius := dist
    done
  done;
  centroid, !radius

(* Representative tuple of one member set: means over cached columns
   (non-numeric slots are None per schema and become NULL). *)
let rep_row rel members =
  let arity = Relalg.Schema.arity (Relalg.Relation.schema rel) in
  Array.init arity (fun col ->
      match Relalg.Relation.column_at rel col with
      | None -> Relalg.Value.Null
      | Some c ->
        let data = Relalg.Column.data c in
        let sum = ref 0. and cnt = ref 0 in
        Array.iter
          (fun row ->
            let v = Array.unsafe_get data row in
            if not (Float.is_nan v) then begin
              sum := !sum +. v;
              incr cnt
            end)
          members;
        if !cnt = 0 then Relalg.Value.Null
        else Relalg.Value.Float (!sum /. float_of_int !cnt))

(* Build the final structure (groups, reverse map, representative
   relation) from explicit member sets. *)
let finalize ~attrs rel member_sets =
  let schema = Relalg.Relation.schema rel in
  let cols = numeric_columns rel attrs in
  let member_sets =
    List.filter (fun ms -> Array.length ms > 0) member_sets
  in
  let groups =
    Array.of_list
      (List.map
         (fun members ->
           let centroid, radius = centroid_radius cols members in
           { members; centroid; radius })
         member_sets)
  in
  let n = Relalg.Relation.cardinality rel in
  let gid_of_row = Array.make n (-1) in
  Array.iteri
    (fun gid g -> Array.iter (fun row -> gid_of_row.(row) <- gid) g.members)
    groups;
  let rep_rows = Array.map (fun g -> rep_row rel g.members) groups in
  let reps = Relalg.Relation.of_array schema rep_rows in
  { attrs; groups; gid_of_row; reps }

let of_groups ~attrs rel member_sets = finalize ~attrs rel member_sets

(* Per-dimension global ranges, used to make split-dimension selection
   scale-invariant (an attribute spanning [0, 2048] must not hijack
   every split from one spanning [0, 1]). *)
let global_ranges cols =
  Array.map
    (fun col ->
      let lo = ref infinity and hi = ref neg_infinity in
      Array.iter
        (fun v ->
          if v < !lo then lo := v;
          if v > !hi then hi := v)
        col;
      let r = !hi -. !lo in
      if r > 0. then r else 1.)
    cols

(* Split members into sub-quadrants around the centroid. To keep the
   fan-out bounded (a 2^k split over many attributes shatters small
   datasets into unusably tiny groups), only the [max_dims] dimensions
   with the largest range-normalized spread around the centroid
   participate in the split — the k-d-tree flavour of the same
   recursion, which the paper cites as an equally valid
   space-partitioning choice. *)
let split_quadrants ~max_dims ~ranges cols centroid members =
  let k = Array.length cols in
  let m = Array.length members in
  let spread = Array.make k 0. in
  for d = 0 to k - 1 do
    let col = Array.unsafe_get cols d in
    let c = Array.unsafe_get centroid d in
    let rg = Array.unsafe_get ranges d in
    let worst = ref 0. in
    for i = 0 to m - 1 do
      let dist =
        Float.abs (Array.unsafe_get col (Array.unsafe_get members i) -. c)
        /. rg
      in
      if dist > !worst then worst := dist
    done;
    Array.unsafe_set spread d !worst
  done;
  let order = Array.init k Fun.id in
  Array.sort (fun a b -> compare spread.(b) spread.(a)) order;
  let ndims = min max_dims k in
  (* quadrant mask per member, then a counting sort by mask: no per-row
     hashing or list allocation, and the sub-quadrant order (ascending
     mask) is deterministic *)
  let masks = Array.make m 0 in
  for bit = 0 to ndims - 1 do
    let d = order.(bit) in
    let col = Array.unsafe_get cols d in
    let c = Array.unsafe_get centroid d in
    let b = 1 lsl bit in
    for i = 0 to m - 1 do
      if Array.unsafe_get col (Array.unsafe_get members i) >= c then
        Array.unsafe_set masks i (Array.unsafe_get masks i lor b)
    done
  done;
  let nb = 1 lsl ndims in
  let counts = Array.make nb 0 in
  for i = 0 to m - 1 do
    let b = masks.(i) in
    counts.(b) <- counts.(b) + 1
  done;
  let out = Array.init nb (fun b -> Array.make counts.(b) 0) in
  let fill = Array.make nb 0 in
  for i = 0 to m - 1 do
    let b = Array.unsafe_get masks i in
    out.(b).(fill.(b)) <- Array.unsafe_get members i;
    fill.(b) <- fill.(b) + 1
  done;
  Array.to_list out |> List.filter (fun a -> Array.length a > 0)

(* Chunk an unsplittable group (all points coincide on the partitioning
   attributes) into tau-sized pieces. *)
let chunk tau members =
  let n = Array.length members in
  let pieces = (n + tau - 1) / tau in
  List.init pieces (fun i ->
      let start = i * tau in
      Array.sub members start (min tau (n - start)))

(* The quad-tree recursion on one member set: split until every piece
   satisfies tau and the radius spec. Shared by [create] (seeded with
   all rows) and the incremental-maintenance layer (re-splitting just
   an overflowing group). *)
let split ?(max_fanout_dims = 2) ~tau ~radius cols members =
  if tau < 1 then invalid_arg "Partition.split: tau must be >= 1";
  if max_fanout_dims < 1 then
    invalid_arg "Partition.split: max_fanout_dims must be >= 1";
  let ranges = global_ranges cols in
  let finished = ref [] in
  let rec process members =
    let centroid, radius_val = centroid_radius cols members in
    if
      Array.length members <= tau
      && radius_ok radius ~centroid ~radius:radius_val
    then finished := members :: !finished
    else begin
      let subs =
        split_quadrants ~max_dims:max_fanout_dims ~ranges cols centroid
          members
      in
      match subs with
      | [ single ] when Array.length single = Array.length members ->
        (* indistinguishable points: radius is zero, split by size *)
        List.iter (fun piece -> finished := piece :: !finished)
          (chunk tau members)
      | subs -> List.iter process subs
    end
  in
  if Array.length members > 0 then process members;
  List.rev !finished

let create ?(radius = No_radius) ?max_fanout_dims ~tau ~attrs rel =
  if tau < 1 then invalid_arg "Partition.create: tau must be >= 1";
  if attrs = [] then invalid_arg "Partition.create: no partitioning attributes";
  let cols = numeric_columns rel attrs in
  let n = Relalg.Relation.cardinality rel in
  let sets = split ?max_fanout_dims ~tau ~radius cols (Array.init n Fun.id) in
  finalize ~attrs rel sets

let restrict_prefix p rel n =
  let keep row = row < n in
  let kept =
    Array.to_list p.groups
    |> List.mapi (fun gid g ->
           ( gid,
             Array.of_list (List.filter keep (Array.to_list g.members)) ))
    |> List.filter (fun (_, members) -> Array.length members > 0)
  in
  let groups =
    Array.of_list
      (List.map (fun (gid, members) -> { p.groups.(gid) with members }) kept)
  in
  let rep_rows =
    Array.of_list
      (List.map (fun (gid, _) -> Relalg.Relation.row p.reps gid) kept)
  in
  let gid_of_row = Array.make n (-1) in
  Array.iteri
    (fun gid g -> Array.iter (fun row -> gid_of_row.(row) <- gid) g.members)
    groups;
  {
    attrs = p.attrs;
    groups;
    gid_of_row;
    reps = Relalg.Relation.of_array (Relalg.Relation.schema rel) rep_rows;
  }

let max_group_size p =
  Array.fold_left (fun acc g -> max acc (Array.length g.members)) 0 p.groups

let check ?tau ?radius p rel =
  let n = Relalg.Relation.cardinality rel in
  let seen = Array.make n false in
  let problem = ref None in
  Array.iteri
    (fun gid g ->
      Array.iter
        (fun row ->
          if !problem = None then begin
            if row < 0 || row >= n then
              problem := Some (Printf.sprintf "group %d: bad row %d" gid row)
            else if seen.(row) then
              problem := Some (Printf.sprintf "row %d in two groups" row)
            else begin
              seen.(row) <- true;
              if p.gid_of_row.(row) <> gid then
                problem :=
                  Some (Printf.sprintf "gid_of_row mismatch for row %d" row)
            end
          end)
        g.members;
      (match tau with
      | Some t when Array.length g.members > t && !problem = None ->
        problem := Some (Printf.sprintf "group %d exceeds tau" gid)
      | _ -> ());
      match radius with
      | Some spec when !problem = None ->
        if not (radius_ok spec ~centroid:g.centroid ~radius:g.radius) then
          problem := Some (Printf.sprintf "group %d violates radius" gid)
      | _ -> ())
    p.groups;
  if !problem = None then
    Array.iteri
      (fun row covered ->
        if (not covered) && !problem = None then
          problem := Some (Printf.sprintf "row %d not covered" row))
      seen;
  match !problem with None -> Ok () | Some msg -> Error msg

let save path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "pkgq-partition v1\n";
      output_string oc ("attrs: " ^ String.concat "," p.attrs ^ "\n");
      Printf.fprintf oc "groups: %d\n" (Array.length p.groups);
      Array.iter
        (fun g ->
          let ids =
            String.concat " "
              (List.map string_of_int (Array.to_list g.members))
          in
          output_string oc (ids ^ "\n"))
        p.groups)

let load path rel =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () =
        match input_line ic with
        | l -> l
        | exception End_of_file ->
          invalid_arg "Partition.load: truncated file"
      in
      if not (String.equal (line ()) "pkgq-partition v1") then
        invalid_arg "Partition.load: bad header";
      let attrs_line = line () in
      let attrs =
        match String.index_opt attrs_line ':' with
        | Some i ->
          String.sub attrs_line (i + 1) (String.length attrs_line - i - 1)
          |> String.trim
          |> String.split_on_char ','
          |> List.map String.trim
          |> List.filter (fun a -> a <> "")
        | None -> invalid_arg "Partition.load: missing attrs line"
      in
      let m =
        let l = line () in
        match String.index_opt l ':' with
        | Some i -> (
          match
            int_of_string_opt
              (String.trim (String.sub l (i + 1) (String.length l - i - 1)))
          with
          | Some m when m >= 0 -> m
          | _ -> invalid_arg "Partition.load: bad group count"
        )
        | None -> invalid_arg "Partition.load: missing groups line"
      in
      let n = Relalg.Relation.cardinality rel in
      let member_sets =
        List.init m (fun _ ->
            line ()
            |> String.split_on_char ' '
            |> List.filter (fun s -> s <> "")
            |> List.map (fun s ->
                   match int_of_string_opt s with
                   | Some id when id >= 0 && id < n -> id
                   | Some id ->
                     invalid_arg
                       (Printf.sprintf
                          "Partition.load: row id %d out of range" id)
                   | None -> invalid_arg "Partition.load: bad row id")
            |> Array.of_list)
      in
      let p = of_groups ~attrs rel member_sets in
      match check p rel with
      | Ok () -> p
      | Error msg -> invalid_arg ("Partition.load: " ^ msg))
