let run ?(max_combinations = 200_000_000) spec rel ~cardinality =
  let start = Unix.gettimeofday () in
  let counters = Eval.fresh_counters () in
  let candidates = Paql.Translate.base_candidates spec rel in
  let n = Array.length candidates in
  let constraints = Array.of_list spec.Paql.Translate.constraints in
  let ncons = Array.length constraints in
  (* Per-candidate coefficient matrix, mirroring the values the SQL
     engine would read from each joined tuple. *)
  let coeffs =
    Array.map
      (fun (c : Paql.Translate.compiled_constraint) ->
        let f = c.Paql.Translate.coeff_rows rel in
        Array.map f candidates)
      constraints
  in
  let maximize =
    match Paql.Translate.objective_sense spec with
    | Lp.Problem.Maximize -> true
    | Lp.Problem.Minimize -> false
  in
  let obj =
    let f = spec.Paql.Translate.objective_rows rel in
    Array.map f candidates
  in
  let sums = Array.make ncons 0. in
  let chosen = Array.make cardinality 0 in
  let best = ref None in
  let explored = ref 0 in
  let exception Too_many in
  (* Enumerate increasing index combinations; constraints are only
     checked on complete combinations, like a post-join filter. *)
  let rec enumerate depth first obj_sum =
    if depth = cardinality then begin
      incr explored;
      if !explored > max_combinations then raise Too_many;
      let ok = ref true in
      for c = 0 to ncons - 1 do
        let v = sums.(c) in
        if
          v < constraints.(c).Paql.Translate.clo -. 1e-9
          || v > constraints.(c).Paql.Translate.chi +. 1e-9
        then ok := false
      done;
      if !ok then begin
        let better =
          match !best with
          | None -> true
          | Some (bobj, _) -> if maximize then obj_sum > bobj else obj_sum < bobj
        in
        if better then
          best := Some (obj_sum, Array.copy chosen)
      end
    end
    else
      for i = first to n - (cardinality - depth) do
        chosen.(depth) <- i;
        for c = 0 to ncons - 1 do
          sums.(c) <- sums.(c) +. coeffs.(c).(i)
        done;
        enumerate (depth + 1) (i + 1) (obj_sum +. obj.(i));
        for c = 0 to ncons - 1 do
          sums.(c) <- sums.(c) -. coeffs.(c).(i)
        done
      done
  in
  let finish status package objective =
    Eval.report ~status ~package ~objective
      ~wall_time:(Unix.gettimeofday () -. start)
      ~counters
  in
  match enumerate 0 0 0. with
  | () -> (
    match !best with
    | None -> finish Eval.Infeasible None None
    | Some (_, idxs) ->
      let entries = Array.to_list (Array.map (fun i -> (candidates.(i), 1)) idxs) in
      let p = Package.make rel entries in
      finish Eval.Optimal (Some p) (Some (Package.objective spec p)))
  | exception Too_many ->
    finish
      (Eval.failed
         (Eval.Data_error
            (Printf.sprintf "enumeration aborted after %d combinations"
               max_combinations)))
      None None
