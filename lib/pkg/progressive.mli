(** Progressive shading (arXiv:2307.02860 §5): coarse-to-fine package
    evaluation over a {!Hierarchy.t}.

    The coarsest level's sketch ILP is solved first; at each finer
    level only the children of {e active} groups — plus a configurable
    slice of objective-attractive runners-up ("near-binding"
    augmentation) — get variables, their caps zeroed otherwise. The
    leaf sketch is refined into original tuples exactly as SketchRefine
    does (Algorithm 2, per-group warm-started ILPs). The cross-level
    LP basis is threaded through {!Faults.solve} so each level warm
    starts from its parent when the dimensions line up.

    Degradation ladder, charged to one absolute deadline:
    - a restricted level that comes back infeasible widens to the full
      level and retries (shading was too aggressive — not an error);
    - a restricted level that {e fails} (injected fault, node budget)
      retries widened and flags the answer [Degraded];
    - a full-width non-leaf infeasibility descends unshaded (finer
      representatives may still express the query);
    - a leaf refine dead end widens the leaf, then hands the leaf
      partitioning to flat {!Sketch_refine.run}'s fallback ladder;
    - everything else is a typed [Failed] report — never an exception,
      never a hang. *)

type options = {
  limits : Ilp.Branch_bound.limits;
  max_seconds : float;  (** one global budget for the whole descent *)
  keep : float;
      (** near-binding augmentation: how many inactive runners-up
          descend, as a fraction of the active-group count
          (default 0.5) *)
  flat_fallback : bool;
      (** run flat SketchRefine over the leaf partitioning when the
          descent dead-ends (default true) *)
}

val default_options : options

(** One descent step's telemetry (one entry per level solve; a widened
    retry records a second entry for the same level). *)
type level_stat = {
  ls_level : int;
  ls_groups : int;    (** groups that had variables *)
  ls_active : int;    (** groups active in the level's solution *)
  ls_seconds : float;
  ls_widened : bool;  (** this solve ran widened to the full level *)
}

(** [run ?options spec rel hier] evaluates the query coarse-to-fine.
    Returns the report plus per-level stats (coarsest first).
    Deterministic: identical hierarchies and options yield identical
    packages for any [PKGQ_SCAN_WORKERS] / [PKGQ_PRICE_WORKERS]. *)
val run :
  ?options:options ->
  Paql.Translate.spec ->
  Relalg.Relation.t ->
  Hierarchy.t ->
  Eval.report * level_stat list
