type result =
  | Refined of Package.t
  | Refine_infeasible
  | Refine_failed of Eval.failure

exception Deadline
exception Solver_failure of Eval.failure
exception Budget_exhausted

(* Mutable refinement state: a group is either still represented by
   [rep_counts.(j)] copies of its representative, or fixed to original
   tuples [refined.(j) = Some entries]. [bases.(j)] caches the optimal
   root basis of the last refine ILP solved for group [j]: the group's
   candidate columns never change across backtracking re-solves (only
   the constraint-bound offsets move), so the next solve for the same
   group warm-starts from it. *)
type state = {
  ctx : Sketch.ctx;
  rep_counts : float array;
  refined : (int * int) list option array;
  bases : Lp.Simplex.Basis.t option array;
}

let num_constraints st = Array.length st.ctx.Sketch.coeff_rel

(* Contribution of group [j]'s current contents to constraint [ci],
   read through the ctx's precomputed row-coefficient accessors. *)
let group_contribution st j ci =
  match st.refined.(j) with
  | Some entries ->
    let f = st.ctx.Sketch.coeff_rel.(ci) in
    List.fold_left
      (fun acc (row, cnt) -> acc +. (float_of_int cnt *. f row))
      0. entries
  | None ->
    if st.rep_counts.(j) = 0. then 0.
    else st.rep_counts.(j) *. st.ctx.Sketch.coeff_reps.(ci) j

(* Aggregates of the partial package p-bar_j (everything but group j),
   which offset the refine query's constraint bounds. *)
let offsets_excluding st j =
  let m = Partition.num_groups st.ctx.Sketch.part in
  Array.init (num_constraints st) (fun ci ->
      let acc = ref 0. in
      for i = 0 to m - 1 do
        if i <> j then acc := !acc +. group_contribution st i ci
      done;
      !acc)

(* Solve the refine query Q[Gj]: pick original tuples from group j that
   combine with the rest of the package to satisfy the query. *)
let refine_query ?limits ?(clamp = true) ~deadline ~stage st counters j =
  (match deadline with
  | Some d when Unix.gettimeofday () > d -> raise Deadline
  | _ -> ());
  let candidates = st.ctx.Sketch.cand.(j) in
  let offsets = offsets_excluding st j in
  let problem =
    Paql.Translate.to_problem ~offsets
      { st.ctx.Sketch.spec with Paql.Translate.where = None }
      st.ctx.Sketch.rel ~candidates
  in
  let basis_out = ref None in
  let result =
    Faults.solve ?limits
      ?deadline:(if clamp then deadline else None)
      ?warm:st.bases.(j) ~basis_out ~stage ~group:j problem
  in
  (match !basis_out with Some _ as b -> st.bases.(j) <- b | None -> ());
  Eval.bump counters result;
  match result with
  | Ilp.Branch_bound.Optimal (sol, _) | Ilp.Branch_bound.Feasible (sol, _, _)
    ->
    let entries = ref [] in
    Array.iteri
      (fun k row ->
        let c = int_of_float (Float.round sol.Ilp.Branch_bound.x.(k)) in
        if c > 0 then entries := (row, c) :: !entries)
      candidates;
    `Feasible (List.rev !entries)
  | Ilp.Branch_bound.Infeasible _ -> `Infeasible
  | Ilp.Branch_bound.Unbounded _ ->
    `Failed
      (Eval.failure ~stage ~group:j
         (Eval.Solver_error "refine query unbounded"))
  | Ilp.Branch_bound.Limit st -> `Failed (Eval.limit_failure ~stage ~group:j st)

(* Algorithm 2. [todo] holds every group still carrying representatives.
   Each loop iteration speculatively refines one group and recurses on
   the rest; a child failure undoes the choice and reorders the
   remaining alternatives so that non-refinable groups come first. At a
   non-root level the first infeasible refine query aborts the level
   (the paper's line 17); at the root we keep trying other first
   groups. The per-level queue only shrinks, so the search is finite
   (worst case, all orderings — as the paper notes). [budget] caps the
   total number of failed refine queries: greedy backtracking is
   worst-case factorial, and past the budget we declare (possibly
   false) infeasibility so the caller can fall back to the hybrid
   sketch, which re-anchors the search on real tuples. *)
let rec refine_level ?limits ~clamp ~deadline ~stage ~budget ~at_root st
    counters todo =
  match todo with
  | [] -> Ok ()
  | _ ->
    let failed = ref [] in
    let queue = ref todo in
    let result = ref None in
    while !result = None && !queue <> [] do
      let j, rest =
        match !queue with j :: rest -> j, rest | [] -> assert false
      in
      queue := rest;
      match refine_query ?limits ~clamp ~deadline ~stage st counters j with
      | `Failed f -> raise (Solver_failure f)
      | `Infeasible ->
        counters.Eval.backtracks <- counters.Eval.backtracks + 1;
        if counters.Eval.backtracks > budget then raise Budget_exhausted;
        failed := j :: !failed;
        if not at_root then result := Some (Error !failed)
      | `Feasible entries -> (
        let saved_rep = st.rep_counts.(j) in
        st.refined.(j) <- Some entries;
        st.rep_counts.(j) <- 0.;
        let child_todo = List.filter (fun g -> g <> j) todo in
        match
          refine_level ?limits ~clamp ~deadline ~stage ~budget ~at_root:false
            st counters child_todo
        with
        | Ok () -> result := Some (Ok ())
        | Error f ->
          (* undo the speculative refinement and greedily prioritize
             the groups that could not be refined below *)
          st.refined.(j) <- None;
          st.rep_counts.(j) <- saved_rep;
          failed := f @ !failed;
          let prioritized, others =
            List.partition (fun g -> List.mem g f) !queue
          in
          queue := prioritized @ others)
    done;
    (match !result with Some r -> r | None -> Error !failed)

type snapshot = {
  srep_counts : float array;
  srefined : (int * int) list option array;
}

let state_of_snapshot ctx snapshot =
  {
    ctx;
    rep_counts = snapshot.srep_counts;
    refined = snapshot.srefined;
    (* parallel workers solve each group once from a snapshot: no
       re-solve to warm, so every group starts cold *)
    bases = Array.make (Partition.num_groups ctx.Sketch.part) None;
  }

let solve_group ?limits ?deadline ctx counters snapshot j =
  let st = state_of_snapshot ctx snapshot in
  match refine_query ?limits ~deadline ~stage:Eval.Parallel st counters j with
  | r -> r
  | exception Deadline ->
    `Failed (Eval.failure ~stage:Eval.Parallel ~group:j Eval.Deadline_exceeded)

let totals ctx snapshot =
  let st = state_of_snapshot ctx snapshot in
  let m = Partition.num_groups ctx.Sketch.part in
  Array.init (num_constraints st) (fun ci ->
      let acc = ref 0. in
      for i = 0 to m - 1 do
        acc := !acc +. group_contribution st i ci
      done;
      !acc)

let within_bounds ?(tol = 1e-6) ctx values =
  List.for_all2
    (fun (c : Paql.Translate.compiled_constraint) v ->
      v >= c.Paql.Translate.clo -. tol && v <= c.Paql.Translate.chi +. tol)
    ctx.Sketch.spec.Paql.Translate.constraints
    (Array.to_list values)

let run ?limits ?deadline ?(clamp = true) ?(max_backtracks = 256)
    ?(stage = Eval.Refine) ?bases ctx counters ~rep_counts ~refined =
  let m = Partition.num_groups ctx.Sketch.part in
  let bases =
    match bases with Some b -> b | None -> Array.make m None
  in
  let st = { ctx; rep_counts; refined; bases } in
  let budget = counters.Eval.backtracks + max_backtracks in
  (* Refine biggest representative multiplicities first: they constrain
     the remaining groups the most. (The initial order is arbitrary per
     the paper; this deterministic choice keeps runs reproducible.) *)
  let todo =
    List.filter
      (fun j -> st.refined.(j) = None && st.rep_counts.(j) > 0.)
      (List.init m Fun.id)
    |> List.sort (fun a b -> compare st.rep_counts.(b) st.rep_counts.(a))
  in
  match
    refine_level ?limits ~clamp ~deadline ~stage ~budget ~at_root:true st
      counters todo
  with
  | Ok () ->
    let entries =
      Array.to_list st.refined
      |> List.concat_map (function Some e -> e | None -> [])
    in
    Refined (Package.make ctx.Sketch.rel entries)
  | Error _ -> Refine_infeasible
  | exception Deadline ->
    Refine_failed (Eval.failure ~stage Eval.Deadline_exceeded)
  | exception Budget_exhausted -> Refine_infeasible
  | exception Solver_failure f -> Refine_failed f
