(** DIRECT package evaluation (Section 3.2): compute base relations,
    translate the whole query to one ILP, hand it to the solver. *)

(** [run ?limits ?warm_basis ?basis_out spec rel] evaluates the
    compiled query over [rel]. [limits] caps the branch-and-bound
    search; hitting a limit with no incumbent yields [Eval.Failed] —
    the analogue of the paper's CPLEX failures on hard instances.

    [warm_basis] seeds the root LP relaxation from a saved basis (the
    server's basis cache passes the one saved by a structurally
    identical earlier query); [basis_out] receives the root
    relaxation's optimal basis for caching. Both route through
    {!Faults.solve}, so [lp=] fault directives apply. *)
val run :
  ?limits:Ilp.Branch_bound.limits ->
  ?warm_basis:Lp.Simplex.Basis.t ->
  ?basis_out:Lp.Simplex.Basis.t option ref ->
  Paql.Translate.spec ->
  Relalg.Relation.t ->
  Eval.report
