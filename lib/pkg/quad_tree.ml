type node = {
  members : int array;
  centroid : float array;
  radius : float;
  children : node list;
}

type t = { tattrs : string list; root : node option }

let attrs t = t.tattrs

let size t =
  let rec count node =
    1 + List.fold_left (fun acc c -> acc + count c) 0 node.children
  in
  match t.root with None -> 0 | Some root -> count root

let load_columns rel attrs = Partition.numeric_columns rel attrs

let centroid_and_radius cols members =
  let k = Array.length cols in
  let centroid = Array.make k 0. in
  let n = float_of_int (Array.length members) in
  Array.iteri
    (fun d col ->
      let s = ref 0. in
      Array.iter (fun row -> s := !s +. col.(row)) members;
      centroid.(d) <- !s /. n)
    cols;
  let radius = ref 0. in
  Array.iter
    (fun row ->
      Array.iteri
        (fun d col ->
          let dist = Float.abs (col.(row) -. centroid.(d)) in
          if dist > !radius then radius := dist)
        cols)
    members;
  centroid, !radius

(* scale-invariant dimension choice, as in Partition.split_quadrants *)
let global_ranges cols =
  Array.map
    (fun col ->
      let lo = ref infinity and hi = ref neg_infinity in
      Array.iter
        (fun v ->
          if v < !lo then lo := v;
          if v > !hi then hi := v)
        col;
      let r = !hi -. !lo in
      if r > 0. then r else 1.)
    cols

let split ~max_dims ~ranges cols centroid members =
  let k = Array.length cols in
  let spread = Array.make k 0. in
  Array.iter
    (fun row ->
      Array.iteri
        (fun d col ->
          let dist = Float.abs (col.(row) -. centroid.(d)) /. ranges.(d) in
          if dist > spread.(d) then spread.(d) <- dist)
        cols)
    members;
  let order = Array.init k Fun.id in
  Array.sort (fun a b -> compare spread.(b) spread.(a)) order;
  let dims = Array.sub order 0 (min max_dims k) in
  let buckets : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun row ->
      let mask = ref 0 in
      Array.iteri
        (fun bit d ->
          if cols.(d).(row) >= centroid.(d) then mask := !mask lor (1 lsl bit))
        dims;
      match Hashtbl.find_opt buckets !mask with
      | Some l -> l := row :: !l
      | None -> Hashtbl.add buckets !mask (ref [ row ]))
    members;
  Hashtbl.fold (fun _ l acc -> Array.of_list (List.rev !l) :: acc) buckets []

let build ?(max_fanout_dims = 2) ~leaf_size ~attrs rel =
  if leaf_size < 1 then invalid_arg "Quad_tree.build: leaf_size must be >= 1";
  if attrs = [] then invalid_arg "Quad_tree.build: no partitioning attributes";
  let cols = load_columns rel attrs in
  let ranges = global_ranges cols in
  let rec grow members =
    let centroid, radius = centroid_and_radius cols members in
    if Array.length members <= leaf_size then
      { members; centroid; radius; children = [] }
    else begin
      let subs = split ~max_dims:max_fanout_dims ~ranges cols centroid members in
      match subs with
      | [ single ] when Array.length single = Array.length members ->
        (* indistinguishable points: chunk into leaf_size pieces *)
        let n = Array.length members in
        let pieces = (n + leaf_size - 1) / leaf_size in
        let children =
          List.init pieces (fun i ->
              let start = i * leaf_size in
              let piece = Array.sub members start (min leaf_size (n - start)) in
              let c, r = centroid_and_radius cols piece in
              { members = piece; centroid = c; radius = r; children = [] })
        in
        { members; centroid; radius; children }
      | subs ->
        { members; centroid; radius; children = List.map grow subs }
    end
  in
  let n = Relalg.Relation.cardinality rel in
  {
    tattrs = attrs;
    root = (if n = 0 then None else Some (grow (Array.init n Fun.id)));
  }

let cut ?(tau = max_int) ?(radius = Partition.No_radius) t rel =
  let rec collect node acc =
    let ok =
      Array.length node.members <= tau
      && Partition.radius_ok radius ~centroid:node.centroid
           ~radius:node.radius
    in
    if ok || node.children = [] then node.members :: acc
    else List.fold_left (fun acc c -> collect c acc) acc node.children
  in
  let member_sets =
    match t.root with None -> [] | Some root -> List.rev (collect root [])
  in
  Partition.of_groups ~attrs:t.tattrs rel member_sets
