(* Progressive shading (arXiv:2307.02860 §5): solve the package query
   coarse-to-fine over a partition hierarchy.

   The coarsest level's sketch ILP is tiny and cheap. Its solution
   names the groups that matter; only their children (plus a slice of
   "near-binding" runners-up, to hedge against the coarse reps lying)
   get variables at the next level. The leaf level's sketch is then
   refined into original tuples exactly as SketchRefine does. Tight
   constraints that a flat, coarse sketch cannot express (group means
   smooth away the tail tuples the query needs) become reachable
   because the descent buys fine leaves only where the solution lives.

   Resilience: one absolute deadline covers the whole descent (every
   ILP clamps to the remaining budget via [Faults.solve]); a failed or
   injected level solve widens that level to all groups and retries
   once, surfacing as a typed [Degraded] answer; anything unrecoverable
   is a typed [Failed] report, never an exception. *)

let src = Logs.Src.create "pkgq.progressive" ~doc:"Progressive evaluation"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  limits : Ilp.Branch_bound.limits;
  max_seconds : float;
  keep : float;
      (* near-binding augmentation: fraction of the active-group count
         worth of inactive runners-up whose children also descend *)
  flat_fallback : bool;
      (* on a leaf refine dead end, re-run flat SketchRefine (its
         hybrid/merge ladder) over the leaf partitioning *)
}

let default_options =
  {
    limits = Ilp.Branch_bound.default_limits;
    max_seconds = 3600.;
    keep = 0.5;
    flat_fallback = true;
  }

(* Per-level descent telemetry (surfaced as server STATS gauges). *)
type level_stat = {
  ls_level : int;
  ls_groups : int;   (* groups that had variables *)
  ls_active : int;   (* groups active in the level's solution *)
  ls_seconds : float;
  ls_widened : bool; (* the level had to widen to all groups *)
}

(* Rank the inactive-but-eligible groups by how attractive their
   representative is to the objective (sense-adjusted, ties by gid):
   the runners-up most likely to become binding one level finer. *)
let runners_up (ctx : Sketch.ctx) ~eligible ~active ~n =
  if n <= 0 then []
  else begin
    let reps = ctx.Sketch.part.Partition.reps in
    let obj = ctx.Sketch.spec.Paql.Translate.objective_rows reps in
    let sense = Paql.Translate.objective_sense ctx.Sketch.spec in
    let score g =
      match sense with
      | Lp.Problem.Maximize -> obj g
      | Lp.Problem.Minimize -> -.obj g
    in
    let cands =
      List.filter (fun g -> eligible g && not (active g))
        (List.init (Partition.num_groups ctx.Sketch.part) Fun.id)
    in
    let ranked =
      List.sort
        (fun a b ->
          let c = Float.compare (score b) (score a) in
          if c <> 0 then c else Int.compare a b)
        cands
    in
    List.filteri (fun i _ -> i < n) ranked
  end

let run ?(options = default_options) spec rel (hier : Hierarchy.t) =
  let start = Unix.gettimeofday () in
  let deadline = start +. options.max_seconds in
  let counters = Eval.fresh_counters () in
  let stats : level_stat list ref = ref [] in
  let degraded : string list ref = ref [] in
  let finish status package objective =
    ( Eval.report ~status ~package ~objective
        ~wall_time:(Unix.gettimeofday () -. start)
        ~counters,
      List.rev !stats )
  in
  let out_of_time () = Unix.gettimeofday () > deadline in
  let nlevels = Hierarchy.num_levels hier in
  (* The cross-level warm-start thread: each level's root basis seeds
     the next solve; a dimension mismatch degrades to a cold solve
     inside the simplex, so this is free insurance, not a correctness
     dependency. *)
  let basis = ref None in
  let sketch_level ~level ctx =
    let basis_out = ref None in
    let r =
      if Faults.take_level_fault level then
        Sketch.Sketch_failed
          (Eval.failure ~stage:Eval.Progressive ~group:level
             (Eval.Solver_error
                (Printf.sprintf "injected descent fault at level %d" level)))
      else
        Eval.observe_stage Eval.Progressive (fun () ->
            Sketch.run ~limits:options.limits ~deadline ?warm:!basis
              ~basis_out ~stage:Eval.Progressive ctx counters)
    in
    (match !basis_out with Some _ as b -> basis := b | None -> ());
    r
  in
  (* Solve one level, widening to the full level once if the restricted
     solve fails or comes back infeasible. [pristine] is the cap array
     as [make_ctx] computed it (the caps in [ctx] are zeroed in place
     to shade groups out, so re-entries must restore first). Returns
     [`Counts of rep_counts * widened | `Infeasible | `Failed of f]. *)
  let solve_level ~level ctx ~pristine ~restricted =
    let t0 = Unix.gettimeofday () in
    let full_caps = pristine in
    Array.blit full_caps 0 ctx.Sketch.caps 0 (Array.length full_caps);
    let record ~widened ~counts =
      let groups = ref 0 and active = ref 0 in
      Array.iter (fun c -> if c > 0. then incr groups) ctx.Sketch.caps;
      (match counts with
      | Some rc -> Array.iter (fun c -> if c > 0.5 then incr active) rc
      | None -> ());
      stats :=
        {
          ls_level = level;
          ls_groups = !groups;
          ls_active = !active;
          ls_seconds = Unix.gettimeofday () -. t0;
          ls_widened = widened;
        }
        :: !stats
    in
    let widen () =
      Array.blit full_caps 0 ctx.Sketch.caps 0 (Array.length full_caps)
    in
    (match restricted with
    | None -> ()
    | Some allowed ->
      Array.iteri
        (fun g _ -> if not allowed.(g) then ctx.Sketch.caps.(g) <- 0.)
        ctx.Sketch.caps);
    let narrowed =
      match restricted with
      | None -> false
      | Some allowed ->
        Array.exists (fun g -> not g) allowed
    in
    match sketch_level ~level ctx with
    | Sketch.Sketched rc ->
      record ~widened:false ~counts:(Some rc);
      `Counts (rc, false)
    | Sketch.Sketch_infeasible when narrowed -> (
      (* the shading was too aggressive for this query: retry over the
         whole level before concluding anything *)
      widen ();
      Log.info (fun k -> k "level %d infeasible when shaded; widening" level);
      match sketch_level ~level ctx with
      | Sketch.Sketched rc ->
        record ~widened:true ~counts:(Some rc);
        `Counts (rc, true)
      | Sketch.Sketch_infeasible ->
        record ~widened:true ~counts:None;
        `Infeasible
      | Sketch.Sketch_failed f ->
        record ~widened:true ~counts:None;
        `Failed f)
    | Sketch.Sketch_infeasible ->
      record ~widened:false ~counts:None;
      `Infeasible
    | Sketch.Sketch_failed f when f.Eval.kind <> Eval.Deadline_exceeded -> (
      (* a failed restricted solve (injected fault, node budget) is
         retried once over the full level: slower but sturdier. The
         answer is then flagged degraded — the descent lost its
         shading at this level. *)
      widen ();
      Log.info (fun k ->
          k "level %d sketch failed (%a); retrying widened" level
            Eval.pp_failure f);
      match sketch_level ~level ctx with
      | Sketch.Sketched rc ->
        degraded :=
          Format.asprintf "level %d sketch failed (%a), solved widened" level
            Eval.pp_failure f
          :: !degraded;
        record ~widened:true ~counts:(Some rc);
        `Counts (rc, true)
      | Sketch.Sketch_infeasible ->
        record ~widened:true ~counts:None;
        `Infeasible
      | Sketch.Sketch_failed f' ->
        record ~widened:true ~counts:None;
        `Failed f')
    | Sketch.Sketch_failed f ->
      record ~widened:false ~counts:None;
      `Failed f
  in
  let attempt () =
    (* restriction for the current level: None = all groups *)
    let restricted = ref None in
    let result = ref None in
    let level = ref 0 in
    while !result = None && !level < nlevels do
      let l = !level in
      if out_of_time () then
        result :=
          Some
            (finish
               (Eval.failed ~stage:Eval.Progressive Eval.Deadline_exceeded)
               None None)
      else begin
        let part = Hierarchy.level hier l in
        let ctx = Sketch.make_ctx spec rel part in
        let pristine = Array.copy ctx.Sketch.caps in
        let eligible = Array.map (fun c -> c > 0.) ctx.Sketch.caps in
        match solve_level ~level:l ctx ~pristine ~restricted:!restricted with
        | `Failed f -> result := Some (finish (Eval.Failed f) None None)
        | `Infeasible ->
          if l = nlevels - 1 then
            (* infeasible over the full leaf level: the same verdict
               flat SketchRefine's plain sketch would reach *)
            result := Some (finish Eval.Infeasible None None)
          else begin
            (* means at this granularity cannot express the query;
               descend unshaded — finer reps may still manage *)
            Log.info (fun k ->
                k "level %d infeasible at full width; descending unshaded" l);
            restricted := None;
            incr level
          end
        | `Counts (rep_counts, widened) ->
          if l = nlevels - 1 then begin
            (* leaf: refine the sketch into original tuples *)
            let m = Partition.num_groups part in
            let bases = Array.make m None in
            let refine rc =
              Eval.observe_stage Eval.Refine (fun () ->
                  Refine.run ~limits:options.limits ~deadline ~bases ctx
                    counters ~rep_counts:rc
                    ~refined:(Array.make m None))
            in
            let finish_refined p =
              let detail = String.concat "; " (List.rev !degraded) in
              let status =
                if detail = "" then Eval.Optimal
                else
                  Eval.Degraded
                    { Eval.stale_groups = []; omitted_groups = []; detail }
              in
              finish status (Some p) (Some (Package.objective spec p))
            in
            match refine rep_counts with
            | Refine.Refined p -> result := Some (finish_refined p)
            | Refine.Refine_failed f ->
              result := Some (finish (Eval.Failed f) None None)
            | Refine.Refine_infeasible -> (
              (* First widen the leaf sketch (unless it already ran
                 full-width), then hand the leaf partitioning to flat
                 SketchRefine's fallback ladder. *)
              let widened_counts =
                if widened || !restricted = None then None
                else
                  match solve_level ~level:l ctx ~pristine ~restricted:None with
                  | `Counts (rc, _) -> Some rc
                  | `Infeasible | `Failed _ -> None
              in
              let after_widen =
                match widened_counts with
                | Some rc -> (
                  match refine rc with
                  | Refine.Refined p -> Some (finish_refined p)
                  | Refine.Refine_failed f ->
                    Some (finish (Eval.Failed f) None None)
                  | Refine.Refine_infeasible -> None)
                | None -> None
              in
              match after_widen with
              | Some r -> result := Some r
              | None ->
                if options.flat_fallback && not (out_of_time ()) then begin
                  Log.info (fun k ->
                      k "leaf refine dead end; flat fallback over %d groups" m);
                  let sr_opts =
                    {
                      Sketch_refine.default_options with
                      limits = options.limits;
                      max_seconds = deadline -. Unix.gettimeofday ();
                    }
                  in
                  let r = Sketch_refine.run ~options:sr_opts spec rel part in
                  result := Some (r, List.rev !stats)
                end
                else result := Some (finish Eval.Infeasible None None))
          end
          else begin
            (* choose who descends: the active groups plus the most
               objective-attractive runners-up *)
            let active = Array.map (fun c -> c > 0.5) rep_counts in
            let n_active =
              Array.fold_left (fun n a -> if a then n + 1 else n) 0 active
            in
            let extra =
              runners_up ctx
                ~eligible:(fun g -> eligible.(g))
                ~active:(fun g -> active.(g))
                ~n:
                  (int_of_float
                     (Float.round (options.keep *. float_of_int n_active)))
            in
            List.iter (fun g -> active.(g) <- true) extra;
            let children = Hierarchy.children hier l in
            let next = Hierarchy.level hier (l + 1) in
            let allowed = Array.make (Partition.num_groups next) false in
            Array.iteri
              (fun g on ->
                if on then List.iter (fun c -> allowed.(c) <- true) children.(g))
              active;
            Log.debug (fun k ->
                k "level %d: %d active (+%d runners-up) of %d; %d children"
                  l n_active (List.length extra)
                  (Partition.num_groups part)
                  (Array.fold_left
                     (fun n a -> if a then n + 1 else n)
                     0 allowed));
            restricted := Some allowed;
            incr level
          end
      end
    done;
    match !result with
    | Some r -> r
    | None ->
      (* an empty hierarchy cannot happen (build yields >= 1 level);
         typed, not an assert, per the resilience contract *)
      finish
        (Eval.failed ~stage:Eval.Progressive
           (Eval.Data_error "empty hierarchy"))
        None None
  in
  (* The resilience contract: a report, never an exception. *)
  try attempt () with
  | Faults.Injected msg ->
    finish (Eval.failed ~stage:Eval.Progressive (Eval.Solver_error msg)) None
      None
  | e ->
    finish
      (Eval.failed ~stage:Eval.Progressive
         (Eval.Solver_error (Printexc.to_string e)))
      None None
