(* Small deterministic PRNG (xorshift) so that the partitioner does not
   depend on global Random state. *)
let next_state s =
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  Int64.logxor s (Int64.shift_left s 17)

let create ?(seed = 42) ?(iters = 20) ?tau ~k ~attrs rel =
  let n = Relalg.Relation.cardinality rel in
  if n = 0 then invalid_arg "Kmeans.create: empty relation";
  let k = max 1 (min k n) in
  let cols = Partition.numeric_columns rel attrs in
  let dims = Array.length cols in
  let state = ref (Int64.of_int (seed * 2654435761 + 1)) in
  let rand_int bound =
    state := next_state !state;
    Int64.to_int (Int64.rem (Int64.logand !state Int64.max_int)
                    (Int64.of_int bound))
  in
  (* init: k distinct random rows *)
  let centers = Array.make_matrix k dims 0. in
  let chosen = Hashtbl.create k in
  let c = ref 0 in
  while !c < k do
    let row = rand_int n in
    if not (Hashtbl.mem chosen row) then begin
      Hashtbl.add chosen row ();
      for d = 0 to dims - 1 do
        centers.(!c).(d) <- cols.(d).(row)
      done;
      incr c
    end
  done;
  let assignment = Array.make n 0 in
  let dist2 row center =
    let acc = ref 0. in
    for d = 0 to dims - 1 do
      let diff = cols.(d).(row) -. center.(d) in
      acc := !acc +. (diff *. diff)
    done;
    !acc
  in
  let changed = ref true in
  let it = ref 0 in
  while !changed && !it < iters do
    incr it;
    changed := false;
    (* assignment step *)
    for row = 0 to n - 1 do
      let best = ref assignment.(row) in
      let best_d = ref (dist2 row centers.(!best)) in
      for cidx = 0 to k - 1 do
        let d = dist2 row centers.(cidx) in
        if d < !best_d then begin
          best_d := d;
          best := cidx
        end
      done;
      if !best <> assignment.(row) then begin
        assignment.(row) <- !best;
        changed := true
      end
    done;
    (* update step *)
    let sums = Array.make_matrix k dims 0. and counts = Array.make k 0 in
    for row = 0 to n - 1 do
      let cidx = assignment.(row) in
      counts.(cidx) <- counts.(cidx) + 1;
      for d = 0 to dims - 1 do
        sums.(cidx).(d) <- sums.(cidx).(d) +. cols.(d).(row)
      done
    done;
    for cidx = 0 to k - 1 do
      if counts.(cidx) > 0 then
        for d = 0 to dims - 1 do
          centers.(cidx).(d) <- sums.(cidx).(d) /. float_of_int counts.(cidx)
        done
    done
  done;
  let buckets = Array.make k [] in
  for row = n - 1 downto 0 do
    buckets.(assignment.(row)) <- row :: buckets.(assignment.(row))
  done;
  let member_sets =
    Array.to_list buckets
    |> List.filter (fun l -> l <> [])
    |> List.map Array.of_list
  in
  let member_sets =
    match tau with
    | None -> member_sets
    | Some t ->
      List.concat_map
        (fun members ->
          let sz = Array.length members in
          if sz <= t then [ members ]
          else
            List.init ((sz + t - 1) / t) (fun i ->
                let start = i * t in
                Array.sub members start (min t (sz - start))))
        member_sets
  in
  Partition.of_groups ~attrs rel member_sets
