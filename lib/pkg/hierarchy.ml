(* Multi-level partition hierarchy for progressive shading
   (arXiv:2307.02860 §5): level 0 is the coarsest partitioning, the
   last level the finest ("leaf"); every level-l group is split further
   by the DLV recursion to form level l+1, so child groups refine their
   parent by construction.

   Size targets are geometric between [n / coarse_groups] and the leaf
   tau, and only the leaf level carries the radius condition (it is the
   level the final refine runs against; the coarser levels only steer
   the descent). *)

type t = {
  attrs : string list;
  levels : Partition.t array; (* coarsest first; last = leaf *)
}

let leaf_env = "PKGQ_DLV_LEAF"
let levels_env = "PKGQ_HIER_LEVELS"

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)

let default_levels () = max 1 (env_int levels_env 3)

(* Leaf groups an order of magnitude finer than the flat default
   (card/10): fine enough that tail tuples get their own
   representatives, coarse enough that leaf sketches stay small. *)
let default_leaf_tau rel =
  let n = Relalg.Relation.cardinality rel in
  max 1 (env_int leaf_env (max 1 (n / 100)))

(* Geometric tau ladder: the coarsest level aims at ~8 groups, the last
   entry is exactly [leaf_tau]; non-increasing. *)
let plan_taus ~n ~leaf_tau ~levels =
  if levels <= 1 then [| leaf_tau |]
  else begin
    let tau0 = float_of_int (max leaf_tau ((n + 7) / 8)) in
    let tl = float_of_int leaf_tau in
    Array.init levels (fun l ->
        if l = levels - 1 then leaf_tau
        else
          let f = float_of_int l /. float_of_int (levels - 1) in
          max leaf_tau
            (int_of_float (Float.round (tau0 *. ((tl /. tau0) ** f)))))
  end

let num_levels t = Array.length t.levels
let level t l = t.levels.(l)
let leaf t = t.levels.(Array.length t.levels - 1)

let build ?(radius = Partition.No_radius) ?levels ?leaf_tau ~attrs rel =
  if Faults.partition_build_fails () then
    raise (Faults.Injected "injected partition build failure");
  if attrs = [] then invalid_arg "Hierarchy.build: no attributes";
  let n = Relalg.Relation.cardinality rel in
  let levels = match levels with Some l -> max 1 l | None -> default_levels () in
  let leaf_tau =
    match leaf_tau with Some t -> max 1 t | None -> default_leaf_tau rel
  in
  let taus = plan_taus ~n ~leaf_tau ~levels in
  let cols = Partition.numeric_columns rel attrs in
  let ranges = Dlv.ranges cols in
  let all = Array.init n Fun.id in
  let parts = Array.make levels None in
  let sets = ref [ all ] in
  for l = 0 to levels - 1 do
    let r = if l = levels - 1 then radius else Partition.No_radius in
    sets :=
      List.concat_map
        (fun s -> Dlv.split ~radius:r ~ranges ~tau:taus.(l) cols s)
        !sets;
    parts.(l) <- Some (Partition.of_groups ~attrs rel !sets)
  done;
  let levels_arr =
    Array.map (function Some p -> p | None -> assert false) parts
  in
  { attrs; levels = levels_arr }

(* [children t l] — for each gid at level [l], the gids of the level
   [l+1] groups it splits into (ascending, since the builder keeps a
   parent's children contiguous and of_groups preserves order). *)
let children t l =
  let parent = t.levels.(l) and child = t.levels.(l + 1) in
  let out = Array.make (Partition.num_groups parent) [] in
  let nc = Partition.num_groups child in
  for g = nc - 1 downto 0 do
    let members = child.Partition.groups.(g).Partition.members in
    let p = parent.Partition.gid_of_row.(members.(0)) in
    out.(p) <- g :: out.(p)
  done;
  out

let parent_gid t ~level:l gid =
  if l = 0 then invalid_arg "Hierarchy.parent_gid: level 0 has no parent";
  let members = t.levels.(l).Partition.groups.(gid).Partition.members in
  t.levels.(l - 1).Partition.gid_of_row.(members.(0))

let check t rel =
  let ( let* ) = Result.bind in
  let n = Relalg.Relation.cardinality rel in
  let rec levels l =
    if l >= Array.length t.levels then Ok ()
    else
      let p = t.levels.(l) in
      let* () =
        if p.Partition.attrs <> t.attrs then
          Error (Printf.sprintf "level %d: attribute list mismatch" l)
        else Ok ()
      in
      let* () = Partition.check p rel in
      let* () =
        if Array.length p.Partition.gid_of_row <> n then
          Error (Printf.sprintf "level %d: row coverage mismatch" l)
        else Ok ()
      in
      (* refinement: all members of a level-l group share one parent *)
      let* () =
        if l = 0 then Ok ()
        else
          let up = t.levels.(l - 1).Partition.gid_of_row in
          let bad = ref None in
          Array.iteri
            (fun g (grp : Partition.group) ->
              let m = grp.Partition.members in
              if Array.length m > 0 then begin
                let p0 = up.(m.(0)) in
                Array.iter
                  (fun r -> if up.(r) <> p0 && !bad = None then bad := Some g)
                  m
              end)
            p.Partition.groups;
          match !bad with
          | Some g ->
            Error
              (Printf.sprintf "level %d: group %d spans several parents" l g)
          | None -> Ok ()
      in
      levels (l + 1)
  in
  levels 0
