(** Offline data partitioning (Section 4.1 of the paper).

    A k-dimensional quad-tree recursion: starting from one group
    holding the whole relation, any group violating the size threshold
    tau or the radius limit omega is split into up to [2^k] sub-
    quadrants around its centroid (k = number of partitioning
    attributes). Groups of indistinguishable tuples that still exceed
    tau are chunked arbitrarily (their radius is zero, so chunking
    preserves both conditions).

    Representative tuples are centroids. They carry the full input
    schema: every numeric attribute holds the group mean (computed over
    all numeric attributes, not just the partitioning ones, so that
    sketch queries still evaluate when the partitioning covers only a
    subset of the query attributes — the Figure 9 regime); non-numeric
    attributes are NULL. *)

(** Radius condition applied during partitioning. *)
type radius_spec =
  | No_radius  (** size threshold only (the paper's default setup) *)
  | Absolute of float  (** every group radius must be <= this *)
  | Theorem of { epsilon : float; maximize : bool }
      (** Equation 1: group radius <= gamma * min_attr |centroid_attr|,
          gamma = epsilon (maximize) or epsilon/(1+epsilon) (minimize) *)

type group = {
  members : int array;   (** row ids, increasing *)
  centroid : float array;  (** per partitioning attribute *)
  radius : float;        (** Definition 2, over partitioning attributes *)
}

type t = {
  attrs : string list;   (** partitioning attributes *)
  groups : group array;  (** group index = gid *)
  gid_of_row : int array;
  reps : Relalg.Relation.t;
      (** representative relation; row [j] represents group [j] *)
}

(** [of_groups ~attrs rel member_sets] builds a partitioning from an
    explicit assignment (used by alternative partitioners such as
    k-means): centroids, radii and representatives are computed from
    the member sets. Empty member sets are dropped. *)
val of_groups :
  attrs:string list -> Relalg.Relation.t -> int array list -> t

(** [create ?radius ?max_fanout_dims ~tau ~attrs rel] partitions [rel].

    [max_fanout_dims] (default 2) bounds how many dimensions take part
    in each split: a violating group splits into [2^max_fanout_dims]
    sub-quadrants along its highest-spread attributes, rather than the
    full [2^k] of a pure k-dimensional quad tree. At the paper's scale
    (millions of tuples) full fan-out is harmless; at laptop scale it
    shatters the data into tiny groups, whose representatives promise
    aggregates their few members cannot deliver, driving REFINE into
    false infeasibility. The bounded-fan-out recursion is the k-d-tree
    variant the paper cites as an equally valid space-partitioning
    scheme.

    @raise Invalid_argument if [tau < 1], [attrs] is empty, or an
    attribute is missing/non-numeric. NULL / NaN values are treated as
    [0.] for centroid and distance purposes. *)
val create : ?radius:radius_spec -> ?max_fanout_dims:int -> tau:int ->
  attrs:string list -> Relalg.Relation.t -> t

val num_groups : t -> int

(** [numeric_columns rel attrs] extracts one shared, cache-backed float
    array per attribute (NULL / NaN read as [0.], matching the
    partitioning distance semantics). The arrays alias the relation's
    column cache — callers must not mutate them.

    @raise Invalid_argument on a missing or non-numeric attribute. *)
val numeric_columns : Relalg.Relation.t -> string list -> float array array

(** [gamma ~maximize ~epsilon] — the Theorem 3 factor. *)
val gamma : maximize:bool -> epsilon:float -> float

(** [radius_ok spec ~centroid ~radius] — does a group with this
    centroid and radius satisfy the radius condition? (Exposed for the
    dynamic partitioner.) *)
val radius_ok : radius_spec -> centroid:float array -> radius:float -> bool

(** [restrict_prefix p n] derives the partitioning for the prefix
    relation of the first [n] rows, as the paper does for smaller data
    sizes (dropping tuples preserves the size condition; the original
    representatives are kept). Empty groups are removed. *)
val restrict_prefix : t -> Relalg.Relation.t -> int -> t

(** {1 Maintenance support}

    Building blocks exposed for the incremental-maintenance layer
    ([Store.Maintain]): they let an updated group be re-split locally
    with the same quad-tree recursion {!create} uses, without touching
    the rest of the partitioning. *)

(** [centroid_radius cols members] — centroid and Definition-2 radius
    of one member set over the given per-attribute columns (the
    {!numeric_columns} layout). *)
val centroid_radius : float array array -> int array -> float array * float

(** [split ?max_fanout_dims ~tau ~radius cols members] runs the
    quad-tree recursion of {!create} on a single member set, returning
    member sets that each satisfy [tau] and [radius]. A set already
    within both limits is returned unchanged (as a singleton list). *)
val split :
  ?max_fanout_dims:int -> tau:int -> radius:radius_spec ->
  float array array -> int array -> int array list

(** [rep_row rel members] — the representative tuple of one group:
    numeric attributes hold the member mean (NULLs excluded),
    non-numeric attributes are NULL. *)
val rep_row : Relalg.Relation.t -> int array -> Relalg.Tuple.t

(** [max_group_size p] and [check ?tau ?radius p rel] support tests. *)
val max_group_size : t -> int

(** Verify the partition invariants: every row in exactly one group,
    sizes within [tau], radii within the radius spec. *)
val check : ?tau:int -> ?radius:radius_spec -> t -> Relalg.Relation.t ->
  (unit, string) result

(** {1 Persistence}

    The paper's workflow partitions once, offline, and reuses the
    partitioning across a whole query workload. [save]/[load] persist
    the group assignment as a small text file (attributes + member id
    lists); centroids, radii and representatives are recomputed against
    the relation on load, which also re-validates every row id. *)

val save : string -> t -> unit

(** [load path rel] rebuilds the partitioning against [rel].
    @raise Invalid_argument on format errors or out-of-range ids. *)
val load : string -> Relalg.Relation.t -> t
