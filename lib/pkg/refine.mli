(** The REFINE step with greedy backtracking (Section 4.2.2,
    Algorithm 2): replace each group's representatives with original
    tuples, one group at a time, by solving a per-group ILP whose
    bounds are offset by the aggregates of the rest of the current
    package. On an infeasible refine query the algorithm backtracks,
    reordering so that previously non-refinable groups go first. *)

type result =
  | Refined of Package.t
  | Refine_infeasible
      (** greedy backtracking exhausted every ordering *)
  | Refine_failed of Eval.failure  (** solver limit or deadline *)

(** [run ?limits ?deadline ctx counters ~rep_counts ~refined] completes
    the sketch package described by [rep_counts] (per-group
    representative multiplicities) and [refined] (groups already fixed
    to original tuples, e.g. by the hybrid sketch query).
    [deadline] is an absolute [Unix.gettimeofday] instant; exceeding it
    yields [Refine_failed]. When [clamp] is true (the default) each
    per-group ILP additionally derives its time limit from the budget
    remaining before [deadline] (via {!Faults.solve}); [clamp:false]
    restores the legacy behaviour of checking the deadline only between
    ILPs. [stage] (default {!Eval.Refine}) tags fault-injection
    matching and failure context — the parallel driver's Phase 3 passes
    {!Eval.Repair}. Backtracking events are counted in
    [counters.backtracks]; more than [max_backtracks] of them (default
    256, greedy backtracking is worst-case factorial) yields
    [Refine_infeasible] so the caller can fall back to the hybrid
    sketch.

    [bases] (one slot per partition group, created internally when
    omitted) carries each group's last optimal ILP root basis across
    refine queries: a group re-solved after backtracking — same
    candidate columns, shifted constraint offsets — warm-starts from
    its previous basis ({!Lp.Simplex.resolve}). Passing the same array
    across successive [run] calls over one [ctx] extends the reuse
    across fallback rungs. *)
val run :
  ?limits:Ilp.Branch_bound.limits ->
  ?deadline:float ->
  ?clamp:bool ->
  ?max_backtracks:int ->
  ?stage:Eval.stage ->
  ?bases:Lp.Simplex.Basis.t option array ->
  Sketch.ctx ->
  Eval.counters ->
  rep_counts:float array ->
  refined:(int * int) list option array ->
  result

(** {1 Low-level pieces for the parallel driver ({!Parallel})} *)

(** A package assignment: per-group representative multiplicities and
    already-refined original-tuple choices. *)
type snapshot = {
  srep_counts : float array;
  srefined : (int * int) list option array;
}

(** [solve_group ?limits ?deadline ctx counters snapshot j] solves the
    refine query Q[Gj] against the given assignment (everything except
    group [j] contributes offsets). Runs under the {!Eval.Parallel}
    stage; an expired [deadline] is reported as a [`Failed] result
    (never an exception), so worker domains stay crash-contained. *)
val solve_group :
  ?limits:Ilp.Branch_bound.limits ->
  ?deadline:float ->
  Sketch.ctx ->
  Eval.counters ->
  snapshot ->
  int ->
  [ `Feasible of (int * int) list | `Infeasible | `Failed of Eval.failure ]

(** [totals ctx snapshot] is the value of each global constraint's
    linear form under the assignment (representatives included). *)
val totals : Sketch.ctx -> snapshot -> float array

(** [within_bounds ctx values] checks the per-constraint values against
    the query's bounds. *)
val within_bounds : ?tol:float -> Sketch.ctx -> float array -> bool
