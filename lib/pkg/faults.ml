(* Deterministic fault injection for the solver stack.

   Every ILP in the pipeline goes through [solve], which (a) applies any
   installed fault directive matching the call, and (b) derives the
   per-call time limit from the remaining global budget when a deadline
   is supplied — the single choke point for both deadline propagation
   and fault injection. *)

type action = Force_limit | Force_infeasible | Force_raise

type cond = {
  on_call : int option;  (* 1-based global ILP call index *)
  on_stage : Eval.stage option;
  on_group : int option;
}

type store_fault = Store_read | Store_checksum

type net_fault = Net_accept | Net_read

type wal_fault = Wal_torn of int | Wal_fsync_fail | Wal_crash of int

(* lp=warm:reject drops any warm-start basis handed to [solve] (as if
   every cache lookup missed); lp=singular:reject corrupts it into a
   singular basis instead, forcing the solver through its warm-reject
   branch. Both must degrade to a typed cold solve with an unchanged
   answer. *)
type lp_fault = Lp_warm_drop | Lp_singular

(* shard=K:... directives are consumed by the coordinator's dispatch
   path: crash (treat the next exchange with shard K as a dead
   connection), stall (delay the next exchange by MS, letting hedges
   and timeouts fire deterministically), drop (sever the connection
   once, exercising reconnect). repl=lag:N holds the WAL shipper N
   records behind its primary while installed. *)
type shard_fault = Shard_crash | Shard_stall of int | Shard_drop

(* partition=build:fail makes the next hierarchy build raise (standing
   while installed); partition=level:K arms a one-shot injected failure
   for the progressive descent's level-K sketch — the driver must
   degrade typed (widen and retry, or report a typed failure), never
   hang. *)
type partition_fault = Partition_level of int | Partition_build

(* stoch=scenario:fail makes scenario generation raise and
   stoch=validate:fail makes out-of-sample validation raise (standing
   while installed) — the stochastic driver must convert either into a
   typed failure, never a hang. Summary-ILP faults need no dedicated
   selector: the generic stage=summary:... path covers them. *)
type stoch_fault = Stoch_scenario | Stoch_validate

(* fence=lease:expire makes a server treat its write lease as already
   expired (every write answers with a typed fenced error, as if the
   coordinator stopped renewing); fence=epoch:stale makes it treat any
   write's epoch stamp as predating its promotion epoch (as if a zombie
   primary were replaying into a promoted replica). Both are standing
   while installed — deterministic injection for the fencing paths. *)
type fence_fault = Fence_lease_expire | Fence_epoch_stale

type directive =
  | Ilp_fault of cond * action
  | Worker_kill of int
  | Store_break of store_fault
  | Queue_full
  | Net_break of net_fault
  | Wal_break of wal_fault
  | Lp_break of lp_fault
  | Shard_break of int * shard_fault
  | Repl_lag of int
  | Partition_break of partition_fault
  | Stoch_break of stoch_fault
  | Fence_break of fence_fault

type spec = directive list

exception Injected of string

let installed : spec Atomic.t = Atomic.make []
let calls = Atomic.make 0

(* 1-based count of WAL record writes since [install], used to target
   the K-th record with wal=torn:K / wal=crash:K. *)
let wal_writes = Atomic.make 0

(* net=... and shard=... directives are one-shot: armed once per
   occurrence at install time, consumed by [take_net_fault] /
   [take_shard_fault]. *)
let net_pending : net_fault list ref = ref []
let shard_pending : (int * shard_fault) list ref = ref []
let level_pending : int list ref = ref []
let net_mu = Mutex.create ()

let install s =
  Atomic.set installed s;
  Atomic.set calls 0;
  Atomic.set wal_writes 0;
  Mutex.protect net_mu (fun () ->
      net_pending :=
        List.filter_map
          (function Net_break f -> Some f | _ -> None)
          s;
      shard_pending :=
        List.filter_map
          (function Shard_break (k, f) -> Some (k, f) | _ -> None)
          s;
      level_pending :=
        List.filter_map
          (function Partition_break (Partition_level k) -> Some k | _ -> None)
          s)

let clear () = install []
let active () = Atomic.get installed <> []

let stage_of_string = function
  | "sketch" -> Some Eval.Sketch
  | "hybrid" -> Some Eval.Hybrid
  | "refine" -> Some Eval.Refine
  | "repair" -> Some Eval.Repair
  | "direct" -> Some Eval.Direct
  | "parallel" -> Some Eval.Parallel
  | "progressive" -> Some Eval.Progressive
  | "scenario" -> Some Eval.Scenario
  | "summary" -> Some Eval.Summary
  | "validate" -> Some Eval.Validate
  | _ -> None

let action_of_string = function
  | "limit" -> Some Force_limit
  | "infeasible" -> Some Force_infeasible
  | "raise" -> Some Force_raise
  | _ -> None

(* Grammar: directives separated by ';', each [selector:action] where
   the selector is ','-separated [key=value] pairs. E.g.
   "ilp=3:limit; stage=sketch:infeasible; stage=refine,group=2:raise;
   worker=1:crash". *)
let parse s =
  let ( let* ) = Result.bind in
  let trim = String.trim in
  let parts =
    String.split_on_char ';' s |> List.map trim
    |> List.filter (fun d -> d <> "")
  in
  let parse_directive d =
    match String.rindex_opt d ':' with
    | None when trim d = "queue=full" ->
      (* shorthand for queue=full:fail *)
      Ok Queue_full
    | None -> Error (Printf.sprintf "fault %S: missing ':action'" d)
    | Some i ->
      let selector = trim (String.sub d 0 i) in
      let act = trim (String.sub d (i + 1) (String.length d - i - 1)) in
      let pairs =
        String.split_on_char ',' selector |> List.map trim
        |> List.filter (fun p -> p <> "")
      in
      let* kvs =
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            match String.index_opt p '=' with
            | None -> Error (Printf.sprintf "fault selector %S: expected key=value" p)
            | Some j ->
              let k = trim (String.sub p 0 j) in
              let v = trim (String.sub p (j + 1) (String.length p - j - 1)) in
              Ok ((k, v) :: acc))
          (Ok []) pairs
      in
      let int_of k v =
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "fault %s=%S: not an integer" k v)
      in
      match kvs with
      | [ ("worker", w) ] when act = "crash" ->
        let* w = int_of "worker" w in
        Ok (Worker_kill w)
      | [ ("store", f) ] when act = "fail" -> (
        match f with
        | "read" -> Ok (Store_break Store_read)
        | "checksum" -> Ok (Store_break Store_checksum)
        | _ ->
          Error
            (Printf.sprintf "fault store %S: expected read|checksum" f))
      | [ ("queue", f) ] when act = "fail" ->
        if f = "full" then Ok Queue_full
        else Error (Printf.sprintf "fault queue %S: expected full" f)
      | [ ("net", f) ] when act = "fail" -> (
        match f with
        | "accept" -> Ok (Net_break Net_accept)
        | "read" -> Ok (Net_break Net_read)
        | _ ->
          Error (Printf.sprintf "fault net %S: expected accept|read" f))
      | [ ("wal", "fsync") ] when act = "fail" -> Ok (Wal_break Wal_fsync_fail)
      | [ ("wal", f) ] when f = "torn" || f = "crash" ->
        let* k = int_of ("wal " ^ f) act in
        if k < 1 then
          Error (Printf.sprintf "fault wal=%s:%d: K must be >= 1" f k)
        else if f = "torn" then Ok (Wal_break (Wal_torn k))
        else Ok (Wal_break (Wal_crash k))
      | [ ("wal", f) ] ->
        Error
          (Printf.sprintf
             "fault wal %S: expected torn:K|fsync:fail|crash:K" f)
      | [ ("lp", f) ] when act = "reject" -> (
        match f with
        | "warm" -> Ok (Lp_break Lp_warm_drop)
        | "singular" -> Ok (Lp_break Lp_singular)
        | _ ->
          Error (Printf.sprintf "fault lp %S: expected warm|singular" f))
      | [ ("lp", f) ] ->
        Error (Printf.sprintf "fault lp=%s: expected lp=warm|singular:reject" f)
      | [ ("repl", "lag") ] ->
        let* n = int_of "repl lag" act in
        if n < 0 then Error "fault repl=lag:N: N must be >= 0"
        else Ok (Repl_lag n)
      | [ ("repl", f) ] ->
        Error (Printf.sprintf "fault repl=%s: expected repl=lag:N" f)
      | [ ("stoch", "scenario") ] when act = "fail" ->
        Ok (Stoch_break Stoch_scenario)
      | [ ("stoch", "validate") ] when act = "fail" ->
        Ok (Stoch_break Stoch_validate)
      | [ ("stoch", f) ] ->
        Error
          (Printf.sprintf
             "fault stoch=%s: expected scenario:fail|validate:fail" f)
      | [ ("fence", "lease") ] when act = "expire" ->
        Ok (Fence_break Fence_lease_expire)
      | [ ("fence", "epoch") ] when act = "stale" ->
        Ok (Fence_break Fence_epoch_stale)
      | [ ("fence", f) ] ->
        Error
          (Printf.sprintf
             "fault fence=%s: expected lease:expire|epoch:stale" f)
      | [ ("partition", "build") ] when act = "fail" ->
        Ok (Partition_break Partition_build)
      | [ ("partition", "level") ] ->
        let* k = int_of "partition level" act in
        if k < 0 then Error "fault partition=level:K: K must be >= 0"
        else Ok (Partition_break (Partition_level k))
      | [ ("partition", f) ] ->
        Error
          (Printf.sprintf "fault partition=%s: expected level:K|build:fail" f)
      | [ ("shard", v) ] -> (
        (* shard=K:crash|drop carries the fault as the action;
           shard=K:stall:MS splits at the last colon, leaving "K:stall"
           as the selector value and MS as the action *)
        match String.index_opt v ':' with
        | Some i -> (
          let* k = int_of "shard" (String.sub v 0 i) in
          match String.sub v (i + 1) (String.length v - i - 1) with
          | "stall" ->
            let* ms = int_of "shard stall" act in
            if ms < 0 then Error "fault shard=K:stall:MS: MS must be >= 0"
            else Ok (Shard_break (k, Shard_stall ms))
          | f ->
            Error
              (Printf.sprintf "fault shard=%d:%s: expected crash|drop|stall:MS"
                 k f))
        | None -> (
          let* k = int_of "shard" v in
          match act with
          | "crash" -> Ok (Shard_break (k, Shard_crash))
          | "drop" -> Ok (Shard_break (k, Shard_drop))
          | a ->
            Error
              (Printf.sprintf "fault shard=%d:%s: expected crash|drop|stall:MS"
                 k a)))
      | _ ->
        let* action =
          match action_of_string act with
          | Some a -> Ok a
          | None ->
            Error
              (Printf.sprintf
                 "fault action %S: expected limit|infeasible|raise (or crash \
                  with a worker selector, fail with a store selector)"
                 act)
        in
        let* cond =
          List.fold_left
            (fun acc (k, v) ->
              let* c = acc in
              match k with
              | "ilp" ->
                let* n = int_of k v in
                Ok { c with on_call = Some n }
              | "group" ->
                let* n = int_of k v in
                Ok { c with on_group = Some n }
              | "stage" -> (
                match stage_of_string v with
                | Some st -> Ok { c with on_stage = Some st }
                | None ->
                  Error
                    (Printf.sprintf
                       "fault stage %S: expected \
                        sketch|hybrid|refine|repair|direct|parallel|\
                        progressive|scenario|summary|validate"
                       v))
              | "worker" ->
                Error "fault selector worker=N only combines with :crash"
              | "store" ->
                Error "fault selector store=F only combines with :fail"
              | "queue" ->
                Error "fault selector queue=full only combines with :fail"
              | "net" ->
                Error "fault selector net=F only combines with :fail"
              | "wal" ->
                Error
                  "fault selector wal=F expects torn:K|fsync:fail|crash:K"
              | "lp" ->
                Error "fault selector lp=F only combines with :reject"
              | "shard" ->
                Error "fault selector shard=K expects crash|drop|stall:MS"
              | "repl" -> Error "fault selector repl expects lag:N"
              | "partition" ->
                Error "fault selector partition expects level:K|build:fail"
              | "stoch" ->
                Error
                  "fault selector stoch expects scenario:fail|validate:fail"
              | "fence" ->
                Error "fault selector fence expects lease:expire|epoch:stale"
              | _ -> Error (Printf.sprintf "fault selector key %S unknown" k))
            (Ok { on_call = None; on_stage = None; on_group = None })
            kvs
        in
        if cond = { on_call = None; on_stage = None; on_group = None } then
          Error (Printf.sprintf "fault %S: empty selector" d)
        else Ok (Ilp_fault (cond, action))
  in
  if parts = [] then Error "empty fault spec (use clear/\"off\" to disable)"
  else
    List.fold_left
      (fun acc d ->
        let* acc = acc in
        let* dir = parse_directive d in
        Ok (dir :: acc))
      (Ok []) parts
    |> Result.map List.rev

let env_var = "PKGQ_FAULTS"

let install_from_env () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some s -> (
    match parse s with
    | Ok spec -> install spec
    | Error msg -> Printf.eprintf "%s ignored: %s\n%!" env_var msg)

let () = install_from_env ()

let action_for ~call ~stage ~group =
  List.find_map
    (function
      | Worker_kill _ | Store_break _ | Queue_full | Net_break _
      | Wal_break _ | Lp_break _ | Shard_break _ | Repl_lag _
      | Partition_break _ | Stoch_break _ | Fence_break _ ->
        None
      | Ilp_fault (c, a) ->
        let ok_call =
          match c.on_call with None -> true | Some k -> k = call
        in
        let ok_stage =
          match c.on_stage with None -> true | Some s -> s = stage
        in
        let ok_group =
          match c.on_group with None -> true | Some g -> Some g = group
        in
        if ok_call && ok_stage && ok_group then Some a else None)
    (Atomic.get installed)

let worker_should_crash w =
  List.exists
    (function Worker_kill k -> k = w | _ -> false)
    (Atomic.get installed)

let store_fault () =
  List.find_map
    (function Store_break f -> Some f | _ -> None)
    (Atomic.get installed)

let wal_write_fault () =
  let n = Atomic.fetch_and_add wal_writes 1 + 1 in
  List.find_map
    (function
      | Wal_break (Wal_torn k) when k = n -> Some `Torn
      | Wal_break (Wal_crash k) when k = n -> Some `Crash
      | _ -> None)
    (Atomic.get installed)

let wal_fsync_fails () =
  List.exists
    (function Wal_break Wal_fsync_fail -> true | _ -> false)
    (Atomic.get installed)

let queue_full () =
  List.exists
    (function Queue_full -> true | _ -> false)
    (Atomic.get installed)

let lp_fault f =
  List.exists
    (function Lp_break g -> g = f | _ -> false)
    (Atomic.get installed)

let take_net_fault f =
  Mutex.protect net_mu (fun () ->
      let rec remove = function
        | [] -> None
        | x :: rest when x = f -> Some rest
        | x :: rest -> Option.map (fun r -> x :: r) (remove rest)
      in
      match remove !net_pending with
      | Some rest ->
        net_pending := rest;
        true
      | None -> false)

let take_shard_fault k =
  Mutex.protect net_mu (fun () ->
      let rec remove = function
        | [] -> None
        | (k', f) :: rest when k' = k -> Some (f, rest)
        | x :: rest ->
          Option.map (fun (f, r) -> (f, x :: r)) (remove rest)
      in
      match remove !shard_pending with
      | Some (f, rest) ->
        shard_pending := rest;
        Some f
      | None -> None)

let partition_build_fails () =
  List.exists
    (function Partition_break Partition_build -> true | _ -> false)
    (Atomic.get installed)

let stoch_scenario_fails () =
  List.exists
    (function Stoch_break Stoch_scenario -> true | _ -> false)
    (Atomic.get installed)

let stoch_validate_fails () =
  List.exists
    (function Stoch_break Stoch_validate -> true | _ -> false)
    (Atomic.get installed)

let fence_lease_expires () =
  List.exists
    (function Fence_break Fence_lease_expire -> true | _ -> false)
    (Atomic.get installed)

let fence_epoch_stale () =
  List.exists
    (function Fence_break Fence_epoch_stale -> true | _ -> false)
    (Atomic.get installed)

let take_level_fault k =
  Mutex.protect net_mu (fun () ->
      let rec remove = function
        | [] -> None
        | x :: rest when x = k -> Some rest
        | x :: rest -> Option.map (fun r -> x :: r) (remove rest)
      in
      match remove !level_pending with
      | Some rest ->
        level_pending := rest;
        true
      | None -> false)

let repl_lag () =
  List.fold_left
    (fun acc -> function Repl_lag n -> max acc n | _ -> acc)
    0 (Atomic.get installed)

let zero_stats stopped =
  {
    Ilp.Branch_bound.nodes = 0;
    simplex_iterations = 0;
    elapsed = 0.;
    stopped;
  }

let solve ?limits ?deadline ?warm ?basis_out ~stage ?group problem =
  let limits =
    match limits with Some l -> l | None -> Ilp.Branch_bound.default_limits
  in
  (* apply lp= directives to the warm-start basis before it reaches the
     solver: drop it (stale-cache simulation) or corrupt it (singular
     basis). Either way the solver must degrade to a cold solve. *)
  let warm_start =
    match warm with
    | None -> None
    | Some _ when lp_fault Lp_warm_drop -> None
    | Some b when lp_fault Lp_singular -> Some (Lp.Simplex.Basis.corrupt b)
    | Some b -> Some b
  in
  let call = Atomic.fetch_and_add calls 1 + 1 in
  match action_for ~call ~stage ~group with
  | Some Force_raise ->
    let where =
      match group with
      | Some g -> Printf.sprintf "%s ILP for group %d" (Eval.stage_name stage) g
      | None -> Printf.sprintf "%s ILP" (Eval.stage_name stage)
    in
    raise (Injected (Printf.sprintf "injected crash at call %d (%s)" call where))
  | Some Force_infeasible -> Ilp.Branch_bound.Infeasible (zero_stats None)
  | Some Force_limit ->
    Ilp.Branch_bound.Limit (zero_stats (Some Ilp.Branch_bound.Stop_nodes))
  | None -> (
    match deadline with
    | None ->
      Ilp.Branch_bound.solve ~limits ?warm_start ?basis_out problem
    | Some d ->
      let remaining = d -. Unix.gettimeofday () in
      if remaining <= 0. then
        (* budget already spent: report a time-stopped limit without
           touching the solver *)
        Ilp.Branch_bound.Limit (zero_stats (Some Ilp.Branch_bound.Stop_time))
      else
        let limits =
          {
            limits with
            Ilp.Branch_bound.max_seconds =
              Float.min limits.Ilp.Branch_bound.max_seconds remaining;
          }
        in
        Ilp.Branch_bound.solve ~limits ?warm_start ?basis_out problem)
