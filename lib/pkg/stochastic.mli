(** SummarySearch-style evaluation of stochastic package queries
    (arXiv:2103.06784).

    A stochastic spec (any [WITH PROBABILITY] constraint or [EXPECTED]
    objective — {!Paql.Translate.is_stochastic}) is solved against
    Monte-Carlo scenarios of its noisy attributes
    ({!Datagen.Scenario}): an optimization set drives the ILP, a
    disjoint held-out set validates the answer out of sample.

    Instead of the scenario-expanded ILP (variables and rows scaling
    with the scenario count), each probabilistic constraint contributes
    a few {e summary} rows: the covered scenarios — the first
    [ceil(p-hat * S)] in index order — are partitioned round-robin into
    [m] groups, and each group is collapsed into one conservative
    (CVaR-like) row taking the per-row minimum of the scenario
    coefficients for a [>=] constraint (maximum for [<=]). Feasibility
    for the summaries implies feasibility for every covered scenario.
    The loop then iterates: an infeasible summary ILP doubles [m]
    (finer, less conservative); a package that misses its probability
    out of sample raises the covered fraction [p-hat]; anything that
    cannot make progress returns a {e typed} outcome within the
    deadline — never a hang.

    Fault hooks: [stoch=scenario:fail] / [stoch=validate:fail] raise at
    the scenario / validation stage, and the generic
    [stage=summary:...] directives hit the summary ILPs; all are
    contained into typed [Failed] reports. *)

type options = {
  limits : Ilp.Branch_bound.limits;
  max_seconds : float;  (** one global budget for the whole search *)
  scenarios : int;  (** optimization scenarios, [PKGQ_SCENARIOS] *)
  validation : int;  (** held-out scenarios, [PKGQ_VALIDATE] *)
  summaries : int;  (** initial summary count [m], [PKGQ_SUMMARIES] *)
  max_summaries : int;  (** doubling cap for [m] *)
  seed : int;  (** scenario PRNG seed *)
  noise : Datagen.Scenario.spec list option;
      (** noise model; [None] derives {!Datagen.Scenario.default_specs}
          over the noisy attributes the query reads *)
}

(** Defaults, with [scenarios]/[validation]/[summaries] read from the
    environment knobs at each call. *)
val default_options : unit -> options

type stats = {
  st_scenarios : int;
  st_validation : int;
  st_summaries : int;  (** final summary count per constraint *)
  st_rounds : int;  (** SummarySearch iterations (solve + validate) *)
  st_validated : float;
      (** worst per-constraint empirical probability of the final
          package on the held-out set (0 when no package) *)
}

(** [run ?options spec rel] — a report, never an exception. A
    non-stochastic spec delegates to {!Direct.run} (empty stats).
    Deterministic for fixed options: scenario streams are derived
    per-index from the seed, independent of worker counts. *)
val run :
  ?options:options ->
  Paql.Translate.spec ->
  Relalg.Relation.t ->
  Eval.report * stats

(** [run_naive ?options spec rel] solves the full scenario-expanded
    ILP: one big-M indicator per (constraint, scenario), a violation
    budget of [floor((1-p) * S)] per constraint. Exact on the
    optimization set but scales with the scenario count — the bench
    baseline SummarySearch is measured against. Requires a finite
    [REPEAT] bound (typed [Data_error] otherwise). The answer is
    validated on the same held-out set ([st_validated]). *)
val run_naive :
  ?options:options ->
  Paql.Translate.spec ->
  Relalg.Relation.t ->
  Eval.report * stats
