type ctx = {
  spec : Paql.Translate.spec;
  rel : Relalg.Relation.t;
  part : Partition.t;
  cand : int array array;
  caps : float array;
  coeff_rel : (int -> float) array;
  coeff_reps : (int -> float) array;
}

let make_ctx spec rel (part : Partition.t) =
  let keep =
    match spec.Paql.Translate.where with
    | None -> fun _ -> true
    | Some pred ->
      (* one vectorized pass over the whole relation, then O(1) member
         lookups while filtering each group *)
      let mask, _ = Relalg.Scan.mask rel pred in
      fun row -> Bytes.unsafe_get mask row = '\001'
  in
  let cand =
    Array.map
      (fun (g : Partition.group) ->
        Array.of_list (List.filter keep (Array.to_list g.Partition.members)))
      part.Partition.groups
  in
  let coeff_of r =
    Array.of_list
      (List.map
         (fun (c : Paql.Translate.compiled_constraint) ->
           c.Paql.Translate.coeff_rows r)
         spec.Paql.Translate.constraints)
  in
  let coeff_rel = coeff_of rel in
  let coeff_reps = coeff_of part.Partition.reps in
  let caps =
    Array.map
      (fun c ->
        let size = float_of_int (Array.length c) in
        (* REPEAT K lets each of the |Gj| candidates appear K+1 times.
           Guard the empty group: [0 * infinity] is NaN. *)
        if size = 0. then 0. else size *. spec.Paql.Translate.max_count)
      cand
  in
  { spec; rel; part; cand; caps; coeff_rel; coeff_reps }

type result =
  | Sketched of float array
  | Sketch_infeasible
  | Sketch_failed of Eval.failure

let group_counts ctx x ~groups =
  let counts = Array.make (Partition.num_groups ctx.part) 0. in
  Array.iteri (fun k gid -> counts.(gid) <- x.(k)) groups;
  counts

let run ?limits ?deadline ?warm ?basis_out ?(stage = Eval.Sketch) ctx counters
    =
  let m = Partition.num_groups ctx.part in
  (* Only groups with a nonzero cap get a variable. *)
  let groups =
    Array.of_list
      (List.filter (fun g -> ctx.caps.(g) > 0.) (List.init m Fun.id))
  in
  (* The sketch ILP ranges over representative tuples: reuse the query
     translation with the representative relation as candidate source
     and the group caps as variable bounds. The WHERE clause is not
     re-applied to representatives: filtering already happened on the
     original tuples, via the caps. *)
  let reps = ctx.part.Partition.reps in
  let problem =
    Paql.Translate.to_problem
      ~var_hi:(fun k -> ctx.caps.(groups.(k)))
      { ctx.spec with Paql.Translate.where = None }
      reps ~candidates:groups
  in
  let result = Faults.solve ?limits ?deadline ?warm ?basis_out ~stage problem in
  Eval.bump counters result;
  match result with
  | Ilp.Branch_bound.Optimal (sol, _) | Ilp.Branch_bound.Feasible (sol, _, _)
    ->
    Sketched (group_counts ctx sol.Ilp.Branch_bound.x ~groups)
  | Ilp.Branch_bound.Infeasible _ -> Sketch_infeasible
  | Ilp.Branch_bound.Unbounded _ ->
    Sketch_failed
      (Eval.failure ~stage (Eval.Solver_error "sketch query unbounded"))
  | Ilp.Branch_bound.Limit st -> Sketch_failed (Eval.limit_failure ~stage st)
