(** Multi-level partition hierarchy for progressive shading
    (arXiv:2307.02860 §5).

    Level 0 is the coarsest partitioning, the last level the finest
    ({e leaf}). Each level is a full {!Partition.t} over the whole
    relation, and each level-[l+1] group refines exactly one level-[l]
    group (the builder splits parents in place with {!Dlv.split}, so
    the property holds by construction and is re-checked by {!check}).

    Only the leaf level carries the caller's radius condition: it is
    the partitioning the final refine runs against; coarser levels just
    steer the descent. *)

type t = {
  attrs : string list;
  levels : Partition.t array;  (** coarsest first; last = leaf *)
}

(** [PKGQ_DLV_LEAF] — leaf size threshold override. *)
val leaf_env : string

(** [PKGQ_HIER_LEVELS] — level count override. *)
val levels_env : string

(** Level count: [PKGQ_HIER_LEVELS], default 3. *)
val default_levels : unit -> int

(** Leaf tau: [PKGQ_DLV_LEAF], default [max 1 (card / 100)] — an order
    of magnitude finer than the flat SketchRefine default. *)
val default_leaf_tau : Relalg.Relation.t -> int

(** The geometric tau ladder used by {!build} (exposed so the catalog
    layer can name each level's partitioning). Non-increasing; last
    entry is [leaf_tau]. *)
val plan_taus : n:int -> leaf_tau:int -> levels:int -> int array

(** [build ?radius ?levels ?leaf_tau ~attrs rel] builds the hierarchy
    top-down with the DLV recursion. Deterministic for any
    [PKGQ_SCAN_WORKERS].
    @raise Faults.Injected under a [partition=build:fail] directive.
    @raise Invalid_argument on an empty or invalid attribute list. *)
val build :
  ?radius:Partition.radius_spec ->
  ?levels:int ->
  ?leaf_tau:int ->
  attrs:string list ->
  Relalg.Relation.t ->
  t

val num_levels : t -> int
val level : t -> int -> Partition.t
val leaf : t -> Partition.t

(** [children t l] — for each gid at level [l], the ascending gids of
    the level-[l+1] groups refining it. *)
val children : t -> int -> int list array

(** [parent_gid t ~level gid] — the level-[level-1] gid containing
    level-[level] group [gid]. @raise Invalid_argument at level 0. *)
val parent_gid : t -> level:int -> int -> int

(** Verify per-level partition invariants plus the refinement property
    (every group's members share one parent). *)
val check : t -> Relalg.Relation.t -> (unit, string) result
