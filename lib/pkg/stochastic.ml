(* SummarySearch-style solving of stochastic package queries
   (arXiv:2103.06784). The scenario-expanded ILP is never solved
   directly on the optimization path: each WITH PROBABILITY constraint
   is represented by a small number of *summary* rows, each the
   conservative (CVaR-like) aggregate of a group of covered scenarios —
   min of the scenario coefficients for a >= constraint, max for a <=.
   A package feasible for the summaries is feasible for every covered
   scenario; out-of-sample validation on a held-out scenario set then
   certifies the probability, and the driver iterates (more summaries
   when infeasible, a larger covered fraction when validation misses)
   until the requested probability is met or a typed outcome falls
   out. *)

type options = {
  limits : Ilp.Branch_bound.limits;
  max_seconds : float;
  scenarios : int;
  validation : int;
  summaries : int;
  max_summaries : int;
  seed : int;
  noise : Datagen.Scenario.spec list option;
}

let int_env name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let default_options () =
  {
    limits = Ilp.Branch_bound.default_limits;
    max_seconds = 60.;
    scenarios = int_env "PKGQ_SCENARIOS" 48;
    validation = int_env "PKGQ_VALIDATE" 200;
    summaries = int_env "PKGQ_SUMMARIES" 2;
    max_summaries = 16;
    seed = 42;
    noise = None;
  }

type stats = {
  st_scenarios : int;
  st_validation : int;
  st_summaries : int;
  st_rounds : int;
  st_validated : float;
}

let no_stats =
  {
    st_scenarios = 0;
    st_validation = 0;
    st_summaries = 0;
    st_rounds = 0;
    st_validated = 1.;
  }

(* Which side of a probabilistic constraint binds. Eq is rejected by
   Analyze, and Gprob never lowers to a two-sided row. *)
let direction (c : Paql.Translate.stochastic_constraint) =
  if c.Paql.Translate.slo > neg_infinity then `Ge else `Le

(* Noisy attributes a constraint's linear form actually reads: SUM
   terms over attributes that have a perturbation matrix. COUNT terms
   are invariant under additive noise. *)
let sum_attrs terms =
  List.filter_map
    (fun (t : Paql.Linform.term) ->
      match t.Paql.Linform.kind with
      | Paql.Linform.Sum a -> Some a
      | _ -> None)
    terms

(* For each SUM term over a noisy attribute, the per-row weight that
   multiplies the attribute's perturbation: the term's coefficient when
   its filter passes and the value is non-null — exactly a COUNT term's
   contribution, so [Linform.coeff_rows] is reused as-is. *)
let noise_weights schema rel deltas terms =
  List.filter_map
    (fun (t : Paql.Linform.term) ->
      match t.Paql.Linform.kind with
      | Paql.Linform.Sum a -> (
        match List.assoc_opt a deltas with
        | None -> None
        | Some m ->
          let w =
            Paql.Linform.coeff_rows schema rel
              [ { t with Paql.Linform.kind = Paql.Linform.Count a } ]
          in
          Some (m, w))
      | _ -> None)
    terms

(* Scenario-dependent coefficient of one constraint for one row:
   base-realization coefficient plus the weighted perturbations. *)
let scenario_coeff base weights s row =
  List.fold_left
    (fun acc ((m : float array array), w) -> acc +. (w row *. m.(s).(row)))
    (base row) weights

let objective_terms (spec : Paql.Translate.spec) =
  match spec.Paql.Translate.query.Paql.Ast.objective with
  | None -> []
  | Some o -> (
    match Paql.Linform.of_objective o with
    | Ok (_, terms, _) -> terms
    | Error _ -> [])

(* Round-robin partition of the covered scenario list into [m] groups
   (deterministic: scenario indices ascending, groups cycled). *)
let round_robin m covered =
  let groups = Array.make m [] in
  List.iteri (fun i s -> groups.(i mod m) <- s :: groups.(i mod m)) covered;
  Array.to_list groups |> List.filter (fun g -> g <> []) |> List.map List.rev

exception Finished of (Eval.report * stats)

let run ?options (spec : Paql.Translate.spec) rel =
  let opts = match options with Some o -> o | None -> default_options () in
  let start = Unix.gettimeofday () in
  let deadline = start +. opts.max_seconds in
  let counters = Eval.fresh_counters () in
  let current_stage = ref Eval.Scenario in
  let finish ?(stats = no_stats) status package objective =
    Eval.report ~status ~package ~objective
      ~wall_time:(Unix.gettimeofday () -. start)
      ~counters,
    stats
  in
  if not (Paql.Translate.is_stochastic spec) then begin
    (* Degenerate: nothing stochastic — the deterministic DIRECT path
       answers (same report shape, empty stochastic stats). *)
    let report = Direct.run ~limits:opts.limits spec rel in
    report, no_stats
  end
  else begin
    let evaluate () =
      let schema = spec.Paql.Translate.schema in
      let candidates = Paql.Translate.base_candidates spec rel in
      (* --- Scenario stage ------------------------------------------- *)
      current_stage := Eval.Scenario;
      let total = opts.scenarios + opts.validation in
      let noisy_attrs =
        (* attrs read by stochastic constraints and (for an EXPECTED
           objective) the objective, restricted to float columns *)
        let from_constraints =
          List.concat_map
            (fun (c : Paql.Translate.stochastic_constraint) ->
              sum_attrs c.Paql.Translate.sterms)
            spec.Paql.Translate.stochastic
        in
        let from_objective =
          if spec.Paql.Translate.expected_objective then
            sum_attrs (objective_terms spec)
          else []
        in
        List.sort_uniq compare (from_constraints @ from_objective)
        |> List.filter (fun a ->
               match Relalg.Schema.index_of_opt schema a with
               | Some i -> (
                 match (Relalg.Schema.attr_at schema i).Relalg.Schema.ty with
                 | Relalg.Value.TFloat -> true
                 | _ -> false)
               | None -> false)
      in
      let scen =
        Eval.observe_stage Eval.Scenario (fun () ->
            if Faults.stoch_scenario_fails () then
              raise
                (Faults.Injected "injected fault: scenario generation failed");
            if noisy_attrs = [] then Ok None
            else
              let specs =
                match opts.noise with
                | Some specs -> specs
                | None -> Datagen.Scenario.default_specs rel noisy_attrs
              in
              Result.map Option.some
                (Datagen.Scenario.generate ~seed:opts.seed ~scenarios:total
                   specs rel))
      in
      let scen =
        match scen with
        | Ok s -> s
        | Error msg ->
          raise_notrace
            (Finished
               (finish (Eval.failed ~stage:Eval.Scenario (Eval.Data_error msg))
                  None None))
      in
      let deltas =
        match scen with
        | None -> []
        | Some t ->
          List.filter_map
            (fun a ->
              Option.map (fun m -> a, m) (Datagen.Scenario.deltas t a))
            noisy_attrs
      in
      (* Per stochastic constraint: base coefficients + noise weights. *)
      let compiled =
        List.map
          (fun (c : Paql.Translate.stochastic_constraint) ->
            let base = c.Paql.Translate.scoeff_rows rel in
            let weights = noise_weights schema rel deltas c.Paql.Translate.sterms in
            c, base, weights)
          spec.Paql.Translate.stochastic
      in
      (* Objective column: base coefficients; under EXPECTED, shifted by
         the mean perturbation over the optimization scenarios. *)
      let obj_base = spec.Paql.Translate.objective_rows rel in
      let obj_row =
        if not spec.Paql.Translate.expected_objective || deltas = [] then
          obj_base
        else begin
          let weights = noise_weights schema rel deltas (objective_terms spec) in
          let s_count = float_of_int opts.scenarios in
          fun row ->
            List.fold_left
              (fun acc ((m : float array array), w) ->
                let sum = ref 0. in
                for s = 0 to opts.scenarios - 1 do
                  sum := !sum +. m.(s).(row)
                done;
                acc +. (w row *. !sum /. s_count))
              (obj_base row) weights
        end
      in
      let cap = spec.Paql.Translate.max_count in
      let vars () =
        Array.to_list
          (Array.map
             (fun row_id ->
               Lp.Problem.var
                 ~name:(Printf.sprintf "x%d" row_id)
                 ~integer:true ~lo:0. ~hi:cap (obj_row row_id))
             candidates)
      in
      let det_rows () =
        List.map
          (fun (c : Paql.Translate.compiled_constraint) ->
            let crow = c.Paql.Translate.coeff_rows rel in
            let coeffs = ref [] in
            Array.iteri
              (fun k row_id ->
                let a = crow row_id in
                if a <> 0. then coeffs := (k, a) :: !coeffs)
              candidates;
            Lp.Problem.row ~name:c.Paql.Translate.cname (List.rev !coeffs)
              ~lo:c.Paql.Translate.clo ~hi:c.Paql.Translate.chi)
          spec.Paql.Translate.constraints
      in
      (* One conservative summary row for a group of covered scenarios:
         min (>=) or max (<=) of the scenario coefficients per row. *)
      let summary_row (c : Paql.Translate.stochastic_constraint) base weights
          gi group =
        let pick =
          match direction c with `Ge -> Float.min | `Le -> Float.max
        in
        let coeffs = ref [] in
        Array.iteri
          (fun k row_id ->
            let a =
              List.fold_left
                (fun acc s ->
                  pick acc (scenario_coeff base weights s row_id))
                (scenario_coeff base weights (List.hd group) row_id)
                (List.tl group)
            in
            if a <> 0. then coeffs := (k, a) :: !coeffs)
          candidates;
        Lp.Problem.row
          ~name:(Printf.sprintf "%s_g%d" c.Paql.Translate.sname gi)
          (List.rev !coeffs) ~lo:c.Paql.Translate.slo ~hi:c.Paql.Translate.shi
      in
      (* Out-of-sample validation: fraction of held-out scenarios in
         which the package satisfies each constraint. *)
      let validate pkg =
        Eval.observe_stage Eval.Validate (fun () ->
            if Faults.stoch_validate_fails () then
              raise (Faults.Injected "injected fault: validation failed");
            let entries = Package.entries pkg in
            List.map
              (fun ((c : Paql.Translate.stochastic_constraint), base, weights) ->
                let ok = ref 0 in
                for s = opts.scenarios to total - 1 do
                  let v =
                    List.fold_left
                      (fun acc (row, mult) ->
                        acc
                        +. (float_of_int mult
                           *. scenario_coeff base weights s row))
                      0. entries
                  in
                  if
                    v >= c.Paql.Translate.slo -. 1e-9
                    && v <= c.Paql.Translate.shi +. 1e-9
                  then incr ok
                done;
                c, float_of_int !ok /. float_of_int opts.validation)
              compiled)
      in
      (* --- SummarySearch loop --------------------------------------- *)
      let p_hat =
        ref
          (List.map
             (fun ((c : Paql.Translate.stochastic_constraint), _, _) ->
               c.Paql.Translate.sname, c.Paql.Translate.sprob)
             compiled)
      in
      let m = ref (max 1 opts.summaries) in
      let rounds = ref 0 in
      let max_rounds = 24 in
      let stats ~validated () =
        {
          st_scenarios = opts.scenarios;
          st_validation = opts.validation;
          st_summaries = !m;
          st_rounds = !rounds;
          st_validated = validated;
        }
      in
      let give_up status =
        raise_notrace
          (Finished (finish ~stats:(stats ~validated:0. ()) status None None))
      in
      let result = ref None in
      while !result = None do
        incr rounds;
        if !rounds > max_rounds then
          give_up
            (Eval.failed ~stage:Eval.Validate
               (Eval.Solver_error
                  "SummarySearch did not converge; increase PKGQ_SCENARIOS"));
        if Unix.gettimeofday () > deadline then
          give_up (Eval.failed ~stage:Eval.Summary Eval.Deadline_exceeded);
        current_stage := Eval.Summary;
        let srows =
          List.concat_map
            (fun ((c : Paql.Translate.stochastic_constraint), base, weights) ->
              let p = List.assoc c.Paql.Translate.sname !p_hat in
              let covered_n =
                min opts.scenarios
                  (max 1
                     (int_of_float
                        (Float.ceil (p *. float_of_int opts.scenarios))))
              in
              let covered = List.init covered_n Fun.id in
              List.mapi
                (fun gi g -> summary_row c base weights gi g)
                (round_robin !m covered))
            compiled
        in
        let problem =
          Lp.Problem.make
            ~sense:(Paql.Translate.objective_sense spec)
            ~vars:(vars ()) ~rows:(det_rows () @ srows)
        in
        let solve_result =
          Eval.observe_stage Eval.Summary (fun () ->
              Faults.solve ~limits:opts.limits ~deadline ~stage:Eval.Summary
                problem)
        in
        Eval.bump counters solve_result;
        match solve_result with
        | Ilp.Branch_bound.Infeasible _ ->
          if !m * 2 <= opts.max_summaries then m := !m * 2
          else
            (* conservatively infeasible at the requested probability
               even at the finest summary partition: a typed answer *)
            result :=
              Some (finish ~stats:(stats ~validated:0. ()) Eval.Infeasible None None)
        | Ilp.Branch_bound.Unbounded _ ->
          give_up
            (Eval.failed ~stage:Eval.Summary
               (Eval.Solver_error "unbounded objective"))
        | Ilp.Branch_bound.Limit st ->
          give_up (Eval.Failed (Eval.limit_failure ~stage:Eval.Summary st))
        | Ilp.Branch_bound.Optimal (sol, _) | Ilp.Branch_bound.Feasible (sol, _, _)
          -> (
          let status =
            match solve_result with
            | Ilp.Branch_bound.Optimal _ -> Eval.Optimal
            | Ilp.Branch_bound.Feasible (_, _, gap) -> Eval.Feasible gap
            | _ -> assert false
          in
          let pkg =
            Package.of_solution rel ~candidates sol.Ilp.Branch_bound.x
          in
          current_stage := Eval.Validate;
          if Unix.gettimeofday () > deadline then
            give_up (Eval.failed ~stage:Eval.Validate Eval.Deadline_exceeded);
          let measured = validate pkg in
          let worst =
            List.fold_left (fun acc (_, e) -> Float.min acc e) 1. measured
          in
          let misses =
            List.filter
              (fun ((c : Paql.Translate.stochastic_constraint), e) ->
                e < c.Paql.Translate.sprob)
              measured
          in
          if misses = [] then
            result :=
              Some
                (finish ~stats:(stats ~validated:worst ()) status (Some pkg)
                   (Some (Package.objective spec pkg)))
          else begin
            (* cover a larger fraction of the optimization scenarios for
               every constraint that missed; if already at full
               coverage, the scenario budget cannot certify p *)
            let bumped = ref false in
            p_hat :=
              List.map
                (fun (name, p) ->
                  if
                    List.exists
                      (fun ((c : Paql.Translate.stochastic_constraint), _) ->
                        c.Paql.Translate.sname = name)
                      misses
                    && p < 1.
                  then begin
                    bumped := true;
                    name, Float.min 1. (p +. (0.5 *. (1. -. p)))
                  end
                  else name, p)
                !p_hat;
            if not !bumped then
              give_up
                (Eval.failed ~stage:Eval.Validate
                   (Eval.Solver_error
                      (Printf.sprintf
                         "validated probability %.3f below target at full \
                          scenario coverage; increase PKGQ_SCENARIOS"
                         worst)))
          end)
      done;
      Option.get !result
    in
    try evaluate () with
    | Finished (report, stats) -> report, stats
    | Faults.Injected msg ->
      finish (Eval.failed ~stage:!current_stage (Eval.Solver_error msg)) None
        None
    | e ->
      finish
        (Eval.failed ~stage:!current_stage
           (Eval.Solver_error (Printexc.to_string e)))
        None None
  end

(* Naive baseline for the bench: the full scenario-expanded ILP with
   one big-M indicator per (constraint, scenario) and a budget row
   allowing at most floor((1-p) * S) violations. Exact on the
   optimization set, but its variable and row counts scale with S —
   the regime SummarySearch exists to avoid. Requires a finite
   repetition cap (REPEAT) to bound the big-M. *)
let run_naive ?options (spec : Paql.Translate.spec) rel =
  let opts = match options with Some o -> o | None -> default_options () in
  let start = Unix.gettimeofday () in
  let deadline = start +. opts.max_seconds in
  let counters = Eval.fresh_counters () in
  let finish ?(stats = no_stats) status package objective =
    Eval.report ~status ~package ~objective
      ~wall_time:(Unix.gettimeofday () -. start)
      ~counters,
    stats
  in
  if not (Paql.Translate.is_stochastic spec) then
    Direct.run ~limits:opts.limits spec rel, no_stats
  else if spec.Paql.Translate.max_count = infinity then
    finish
      (Eval.failed ~stage:Eval.Summary
         (Eval.Data_error
            "the scenario-expanded ILP needs a finite REPEAT bound (big-M)"))
      None None
  else begin
    let evaluate () =
      let schema = spec.Paql.Translate.schema in
      let candidates = Paql.Translate.base_candidates spec rel in
      let total = opts.scenarios + opts.validation in
      let noisy_attrs =
        List.concat_map
          (fun (c : Paql.Translate.stochastic_constraint) ->
            sum_attrs c.Paql.Translate.sterms)
          spec.Paql.Translate.stochastic
        |> List.sort_uniq compare
        |> List.filter (fun a ->
               match Relalg.Schema.index_of_opt schema a with
               | Some i -> (
                 match (Relalg.Schema.attr_at schema i).Relalg.Schema.ty with
                 | Relalg.Value.TFloat -> true
                 | _ -> false)
               | None -> false)
      in
      let scen =
        if noisy_attrs = [] then Ok None
        else
          let specs =
            match opts.noise with
            | Some specs -> specs
            | None -> Datagen.Scenario.default_specs rel noisy_attrs
          in
          Result.map Option.some
            (Datagen.Scenario.generate ~seed:opts.seed ~scenarios:total specs
               rel)
      in
      match scen with
      | Error msg ->
        finish (Eval.failed ~stage:Eval.Scenario (Eval.Data_error msg)) None
          None
      | Ok scen ->
        let deltas =
          match scen with
          | None -> []
          | Some t ->
            List.filter_map
              (fun a ->
                Option.map (fun m -> a, m) (Datagen.Scenario.deltas t a))
              noisy_attrs
        in
        let compiled =
          List.map
            (fun (c : Paql.Translate.stochastic_constraint) ->
              let base = c.Paql.Translate.scoeff_rows rel in
              let weights =
                noise_weights schema rel deltas c.Paql.Translate.sterms
              in
              c, base, weights)
            spec.Paql.Translate.stochastic
        in
        let obj_row = spec.Paql.Translate.objective_rows rel in
        let cap = spec.Paql.Translate.max_count in
        let nx = Array.length candidates in
        let xvars =
          Array.to_list
            (Array.map
               (fun row_id ->
                 Lp.Problem.var
                   ~name:(Printf.sprintf "x%d" row_id)
                   ~integer:true ~lo:0. ~hi:cap (obj_row row_id))
               candidates)
        in
        (* indicator variables: z[(c, s)] = 1 when scenario s of
           constraint c is allowed to be violated *)
        let zvars =
          List.concat_map
            (fun ((c : Paql.Translate.stochastic_constraint), _, _) ->
              List.init opts.scenarios (fun s ->
                  Lp.Problem.var
                    ~name:
                      (Printf.sprintf "z_%s_%d" c.Paql.Translate.sname s)
                    ~integer:true ~lo:0. ~hi:1. 0.))
            compiled
        in
        let rows = ref [] in
        List.iter
          (fun (c : Paql.Translate.compiled_constraint) ->
            let crow = c.Paql.Translate.coeff_rows rel in
            let coeffs = ref [] in
            Array.iteri
              (fun k row_id ->
                let a = crow row_id in
                if a <> 0. then coeffs := (k, a) :: !coeffs)
              candidates;
            rows :=
              Lp.Problem.row ~name:c.Paql.Translate.cname (List.rev !coeffs)
                ~lo:c.Paql.Translate.clo ~hi:c.Paql.Translate.chi
              :: !rows)
          spec.Paql.Translate.constraints;
        List.iteri
          (fun ci ((c : Paql.Translate.stochastic_constraint), base, weights) ->
            let zbase = nx + (ci * opts.scenarios) in
            let bound =
              match direction c with
              | `Ge -> c.Paql.Translate.slo
              | `Le -> c.Paql.Translate.shi
            in
            for s = 0 to opts.scenarios - 1 do
              (* big-M: the constraint is released when z = 1 *)
              let coeffs = ref [] in
              let reach = ref 0. in
              Array.iteri
                (fun k row_id ->
                  let a = scenario_coeff base weights s row_id in
                  if a <> 0. then begin
                    coeffs := (k, a) :: !coeffs;
                    reach := !reach +. (cap *. Float.abs a)
                  end)
                candidates;
              let big_m = !reach +. Float.abs bound +. 1. in
              let row =
                match direction c with
                | `Ge ->
                  Lp.Problem.row
                    ~name:(Printf.sprintf "%s_s%d" c.Paql.Translate.sname s)
                    (List.rev ((zbase + s, big_m) :: !coeffs))
                    ~lo:c.Paql.Translate.slo ~hi:infinity
                | `Le ->
                  Lp.Problem.row
                    ~name:(Printf.sprintf "%s_s%d" c.Paql.Translate.sname s)
                    (List.rev ((zbase + s, -.big_m) :: !coeffs))
                    ~lo:neg_infinity ~hi:c.Paql.Translate.shi
              in
              rows := row :: !rows
            done;
            (* violation budget: at most floor((1-p) * S) scenarios *)
            let budget =
              Float.of_int opts.scenarios
              *. (1. -. c.Paql.Translate.sprob)
            in
            rows :=
              Lp.Problem.row
                ~name:(Printf.sprintf "%s_budget" c.Paql.Translate.sname)
                (List.init opts.scenarios (fun s -> zbase + s, 1.))
                ~lo:neg_infinity ~hi:(Float.of_int (int_of_float budget))
              :: !rows)
          compiled;
        let problem =
          Lp.Problem.make
            ~sense:(Paql.Translate.objective_sense spec)
            ~vars:(xvars @ zvars) ~rows:(List.rev !rows)
        in
        let result =
          Faults.solve ~limits:opts.limits ~deadline ~stage:Eval.Summary
            problem
        in
        Eval.bump counters result;
        match result with
        | Ilp.Branch_bound.Infeasible _ -> finish Eval.Infeasible None None
        | Ilp.Branch_bound.Unbounded _ ->
          finish
            (Eval.failed ~stage:Eval.Summary
               (Eval.Solver_error "unbounded objective"))
            None None
        | Ilp.Branch_bound.Limit st ->
          finish (Eval.Failed (Eval.limit_failure ~stage:Eval.Summary st)) None
            None
        | Ilp.Branch_bound.Optimal (sol, _)
        | Ilp.Branch_bound.Feasible (sol, _, _) ->
          let status =
            match result with
            | Ilp.Branch_bound.Optimal _ -> Eval.Optimal
            | Ilp.Branch_bound.Feasible (_, _, gap) -> Eval.Feasible gap
            | _ -> assert false
          in
          let x = Array.sub sol.Ilp.Branch_bound.x 0 nx in
          let pkg = Package.of_solution rel ~candidates x in
          let entries = Package.entries pkg in
          let validated =
            List.fold_left
              (fun acc
                   ((c : Paql.Translate.stochastic_constraint), base, weights)
                 ->
                let ok = ref 0 in
                for s = opts.scenarios to total - 1 do
                  let v =
                    List.fold_left
                      (fun acc (row, mult) ->
                        acc
                        +. (float_of_int mult
                           *. scenario_coeff base weights s row))
                      0. entries
                  in
                  if
                    v >= c.Paql.Translate.slo -. 1e-9
                    && v <= c.Paql.Translate.shi +. 1e-9
                  then incr ok
                done;
                Float.min acc (float_of_int !ok /. float_of_int opts.validation))
              1. compiled
          in
          let stats =
            {
              st_scenarios = opts.scenarios;
              st_validation = opts.validation;
              st_summaries = 0;
              st_rounds = 1;
              st_validated = validated;
            }
          in
          finish ~stats status (Some pkg)
            (Some (Package.objective spec pkg))
    in
    try evaluate () with
    | Faults.Injected msg ->
      finish (Eval.failed ~stage:Eval.Summary (Eval.Solver_error msg)) None None
    | e ->
      finish
        (Eval.failed ~stage:Eval.Summary
           (Eval.Solver_error (Printexc.to_string e)))
        None None
  end
