let src = Logs.Src.create "pkgq.sketchrefine" ~doc:"SketchRefine evaluation"

module Log = (val Logs.src_log src : Logs.LOG)

type fallback = Hybrid_sketch | Drop_attributes | Merge_groups

type options = {
  limits : Ilp.Branch_bound.limits;
  max_seconds : float;
  fallbacks : fallback list;
  propagate_deadline : bool;
}

let default_options =
  {
    limits = Ilp.Branch_bound.default_limits;
    max_seconds = 3600.;
    fallbacks = [ Hybrid_sketch ];
    propagate_deadline = true;
  }

(* Hybrid sketch query (Section 4.4.1): original tuples for group [j],
   representatives (with caps) for every other group, in one ILP. On
   success the package is already refined on [j]. *)
let hybrid_sketch ?limits ?deadline (ctx : Sketch.ctx) counters j =
  let rel = ctx.Sketch.rel in
  let reps = ctx.Sketch.part.Partition.reps in
  let spec = { ctx.Sketch.spec with Paql.Translate.where = None } in
  let own = ctx.Sketch.cand.(j) in
  let n_own = Array.length own in
  let m = Partition.num_groups ctx.Sketch.part in
  let other_groups =
    Array.of_list
      (List.filter (fun g -> g <> j && ctx.Sketch.caps.(g) > 0.)
         (List.init m Fun.id))
  in
  (* Build a combined ILP by hand: the tuple sources differ per block,
     so we cannot reuse Translate.to_problem directly. Variables [0,
     n_own) read group j's rows of [rel]; the rest read one rep row
     each — both through the cached row-coefficient accessors. *)
  let cap k =
    if k < n_own then spec.Paql.Translate.max_count
    else ctx.Sketch.caps.(other_groups.(k - n_own))
  in
  let total = n_own + Array.length other_groups in
  let obj_rel = spec.Paql.Translate.objective_rows rel in
  let obj_reps = spec.Paql.Translate.objective_rows reps in
  let obj k =
    if k < n_own then obj_rel own.(k)
    else obj_reps other_groups.(k - n_own)
  in
  let vars =
    List.init total (fun k ->
        Lp.Problem.var ~integer:true ~lo:0. ~hi:(cap k) (obj k))
  in
  let rows =
    List.mapi
      (fun ci (c : Paql.Translate.compiled_constraint) ->
        let crel = ctx.Sketch.coeff_rel.(ci) in
        let creps = ctx.Sketch.coeff_reps.(ci) in
        let coeffs = ref [] in
        for k = total - 1 downto 0 do
          let a =
            if k < n_own then crel own.(k)
            else creps other_groups.(k - n_own)
          in
          if a <> 0. then coeffs := (k, a) :: !coeffs
        done;
        Lp.Problem.row !coeffs ~lo:c.Paql.Translate.clo
          ~hi:c.Paql.Translate.chi)
      spec.Paql.Translate.constraints
  in
  let sense = Paql.Translate.objective_sense spec in
  let problem = Lp.Problem.make ~sense ~vars ~rows in
  let result = Faults.solve ?limits ?deadline ~stage:Eval.Hybrid ~group:j problem in
  Eval.bump counters result;
  match result with
  | Ilp.Branch_bound.Optimal (sol, _) | Ilp.Branch_bound.Feasible (sol, _, _)
    ->
    let x = sol.Ilp.Branch_bound.x in
    let entries = ref [] in
    for k = 0 to n_own - 1 do
      let c = int_of_float (Float.round x.(k)) in
      if c > 0 then entries := (own.(k), c) :: !entries
    done;
    let rep_counts = Array.make m 0. in
    Array.iteri
      (fun i g -> rep_counts.(g) <- Float.round x.(n_own + i))
      other_groups;
    Some (List.rev !entries, rep_counts)
  | Ilp.Branch_bound.Infeasible _ | Ilp.Branch_bound.Unbounded _
  | Ilp.Branch_bound.Limit _ ->
    None

(* Partitioning attributes implicated by an IIS of the sketch ILP
   (Section 4.4.3). *)
let iis_attrs (ctx : Sketch.ctx) =
  let m = Partition.num_groups ctx.Sketch.part in
  let groups =
    Array.of_list
      (List.filter (fun g -> ctx.Sketch.caps.(g) > 0.) (List.init m Fun.id))
  in
  let problem =
    Paql.Translate.to_problem
      ~var_hi:(fun k -> ctx.Sketch.caps.(groups.(k)))
      { ctx.Sketch.spec with Paql.Translate.where = None }
      ctx.Sketch.part.Partition.reps ~candidates:groups
  in
  match Ilp.Iis.rows problem with
  | None -> []
  | Some rows ->
    let constraints = Array.of_list ctx.Sketch.spec.Paql.Translate.constraints in
    List.concat_map
      (fun i ->
        if i < Array.length constraints then
          constraints.(i).Paql.Translate.cattrs
        else [])
      rows

(* Merge the smallest groups pairwise, halving the group count
   (Section 4.4.4). *)
let merge_groups (part : Partition.t) rel =
  let sets =
    Array.to_list part.Partition.groups
    |> List.map (fun (g : Partition.group) -> g.Partition.members)
    |> List.sort (fun a b -> compare (Array.length a) (Array.length b))
  in
  let rec pair = function
    | a :: b :: rest -> Array.append a b :: pair rest
    | [ a ] -> [ a ]
    | [] -> []
  in
  Partition.of_groups ~attrs:part.Partition.attrs rel (pair sets)

let run ?(options = default_options) spec rel partition =
  let start = Unix.gettimeofday () in
  let deadline = start +. options.max_seconds in
  (* When propagation is on, every ILP derives its time limit from the
     remaining global budget; otherwise the deadline is only polled
     between pipeline steps (the legacy behaviour, kept for the bench's
     before/after comparison). *)
  let solver_deadline = if options.propagate_deadline then Some deadline else None in
  let counters = Eval.fresh_counters () in
  let finish status package objective =
    Eval.report ~status ~package ~objective
      ~wall_time:(Unix.gettimeofday () -. start)
      ~counters
  in
  let out_of_time () = Unix.gettimeofday () > deadline in
  (* One sketch+refine attempt over a given partitioning. [on_infeasible]
     receives the context so fallbacks can inspect it. *)
  let rec attempt part ~fallbacks =
    let ctx = Sketch.make_ctx spec rel part in
    let m = Partition.num_groups part in
    Log.debug (fun k -> k "attempt: %d groups, fallbacks=%d" m
                  (List.length fallbacks));
    (* One basis slot per group, shared by every refine rung of this
       attempt (ladder re-entries via the hybrid sketch included): a
       group re-solved on a later rung warm-starts from its last
       optimal basis. A new attempt re-partitions, so bases reset. *)
    let bases = Array.make m None in
    let refine_from ~rep_counts ~refined ~on_infeasible =
      match
        Eval.observe_stage Eval.Refine (fun () ->
            Refine.run ~limits:options.limits ~deadline
              ~clamp:options.propagate_deadline ~bases ctx counters
              ~rep_counts ~refined)
      with
      | Refine.Refined p ->
        finish Eval.Optimal (Some p) (Some (Package.objective spec p))
      | Refine.Refine_infeasible -> on_infeasible ()
      | Refine.Refine_failed f -> finish (Eval.Failed f) None None
    in
    let rec try_hybrid j ~on_exhausted =
      if j >= m then on_exhausted ()
      else if out_of_time () then
        finish (Eval.failed ~stage:Eval.Hybrid Eval.Deadline_exceeded) None None
      else if ctx.Sketch.caps.(j) <= 0. then try_hybrid (j + 1) ~on_exhausted
      else
        match
          Eval.observe_stage Eval.Hybrid (fun () ->
              hybrid_sketch ~limits:options.limits ?deadline:solver_deadline
                ctx counters j)
        with
        | Some (entries, rep_counts) ->
          let refined = Array.make m None in
          refined.(j) <- Some entries;
          rep_counts.(j) <- 0.;
          refine_from ~rep_counts ~refined ~on_infeasible:(fun () ->
              try_hybrid (j + 1) ~on_exhausted)
        | None -> try_hybrid (j + 1) ~on_exhausted
    in
    (* Fallback ladder: each strategy either produces a report or
       delegates to the rest of the ladder. *)
    let rec fallback_chain = function
      | [] -> finish Eval.Infeasible None None
      | _ when out_of_time () ->
        finish (Eval.failed ~stage:Eval.Fallback Eval.Deadline_exceeded) None
          None
      | Hybrid_sketch :: rest ->
        Log.info (fun k -> k "falling back: hybrid sketch queries");
        try_hybrid 0 ~on_exhausted:(fun () -> fallback_chain rest)
      | Drop_attributes :: rest -> (
        Log.info (fun k -> k "falling back: IIS-guided attribute dropping");
        match iis_attrs ctx with
        | [] -> fallback_chain rest
        | bad ->
          let remaining =
            List.filter
              (fun a -> not (List.mem a bad))
              part.Partition.attrs
          in
          if remaining = [] || List.length remaining = List.length part.Partition.attrs
          then fallback_chain rest
          else begin
            let tau = max 1 (Partition.max_group_size part) in
            let coarser = Partition.create ~tau ~attrs:remaining rel in
            (* retry once with the projected partitioning; do not
               re-enter Drop_attributes *)
            attempt coarser ~fallbacks:rest
          end)
      | Merge_groups :: rest ->
        Log.info (fun k -> k "falling back: merging %d groups pairwise" m);
        if m <= 1 then fallback_chain rest
        else
          (* halve the group count and retry, keeping Merge_groups in
             the ladder: the recursion bottoms out at one group, where
             the hybrid/refine query is the original problem *)
          attempt (merge_groups part rel) ~fallbacks:(Hybrid_sketch :: Merge_groups :: rest)
    in
    match
      Eval.observe_stage Eval.Sketch (fun () ->
          Sketch.run ~limits:options.limits ?deadline:solver_deadline ctx
            counters)
    with
    | Sketch.Sketched rep_counts ->
      refine_from ~rep_counts ~refined:(Array.make m None)
        ~on_infeasible:(fun () -> fallback_chain fallbacks)
    | Sketch.Sketch_failed f -> finish (Eval.Failed f) None None
    | Sketch.Sketch_infeasible ->
      Log.info (fun k -> k "sketch query infeasible");
      fallback_chain fallbacks
  in
  (* The resilience contract: a report, never an exception. *)
  try attempt partition ~fallbacks:options.fallbacks with
  | Faults.Injected msg ->
    finish (Eval.failed (Eval.Solver_error msg)) None None
  | e -> finish (Eval.failed (Eval.Solver_error (Printexc.to_string e))) None None
