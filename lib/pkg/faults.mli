(** Deterministic fault injection and deadline-aware ILP dispatch.

    Every [Branch_bound.solve] call site in the package pipeline routes
    through {!solve}, making this module the single choke point for two
    resilience mechanisms:

    - {b deadline propagation} — given an absolute [deadline], the
      per-call [max_seconds] is clamped to the remaining global budget
      (an already-expired deadline returns a synthetic time-stopped
      [Limit] without invoking the solver);
    - {b fault injection} — an installed {!spec} can force a [Limit],
      an [Infeasible], or a raised {!Injected} exception on the k-th
      ILP call overall, on a pipeline stage, or on a specific group,
      and can kill a chosen parallel worker. This is what makes every
      rung of the Section 4.4 fallback ladder — and the Section 4.5
      worker-crash/repair path — deterministically testable on feasible
      inputs.

    Faults are configured from the [PKGQ_FAULTS] environment variable
    at load time, from the CLI ([--faults]), or programmatically.

    {2 Grammar}

    Directives are separated by [';']; each is [selector:action] where
    the selector is a [',']-separated conjunction of [key=value] pairs:

    {v
    ilp=K        the K-th ILP call overall (1-based, global counter)
    stage=S      S in sketch|hybrid|refine|repair|direct|parallel|
                 progressive
    group=J      partition group id J
    worker=W     parallel worker index W (only with action crash)
    store=F      F in read|checksum (only with action fail)
    queue=full   the service scheduler's admission check (action fail)
    net=F        F in accept|read (only with action fail)
    wal=torn:K   tear the K-th WAL record write (half the bytes, no
                 sync) and kill the process — a torn tail
    wal=crash:K  kill the process right after the K-th WAL record is
                 durable but before it is acknowledged
    wal=fsync:fail  every WAL sync reports failure (write not applied,
                 not acknowledged)
    lp=warm:reject      drop any warm-start basis handed to {!solve}
                 (every basis-cache lookup behaves as a miss)
    lp=singular:reject  corrupt the warm-start basis into a singular
                 one, forcing the solver's warm-reject path
    shard=K:crash       one-shot: the coordinator treats its next
                 exchange with shard K as a dead connection
    shard=K:stall:MS    one-shot: delay the coordinator's next exchange
                 with shard K by MS milliseconds (fires hedges and
                 read timeouts deterministically)
    shard=K:drop        one-shot: sever the coordinator's connection
                 to shard K once (exercises reconnect)
    repl=lag:N   hold each WAL shipper N records behind its primary
                 while installed (replica staleness, deterministic)
    partition=build:fail   every hierarchy/partition build raises
                 {!Injected} while installed (the progressive driver
                 must answer with a typed failure, not an exception)
    partition=level:K      one-shot: inject a failure into the
                 progressive descent's level-K sketch (0 = coarsest);
                 the driver must degrade typed — widen the level and
                 retry, or report the failure — never hang
    stoch=scenario:fail    every scenario generation raises {!Injected}
                 while installed (the stochastic driver must answer
                 with a typed failure, not an exception)
    stoch=validate:fail    every out-of-sample validation raises
                 {!Injected} while installed — same typed-degradation
                 obligation. Summary-ILP faults use the generic
                 [stage=summary:...] selector.
    fence=lease:expire     the server treats its write lease as already
                 expired while installed: every write answers with a
                 typed [fenced] error, as if the coordinator stopped
                 renewing (deterministic zombie-primary simulation)
    fence=epoch:stale      the server treats every write's epoch stamp
                 as predating its promotion epoch while installed: the
                 replica-apply rejection path, deterministically
    v}

    Actions: [limit] (forced node-limit), [infeasible], [raise]
    (raises {!Injected}), [crash] (worker kill), [fail] (store-layer
    corruption: [store=read] makes the next segment read abort as if
    the file were truncated, [store=checksum] makes its checksum
    verification fail; service layer: [queue=full] makes every
    admission check report a full queue while installed — so shedding
    is testable without racing real load — and [net=accept] /
    [net=read] arm {e one-shot} connection faults: the server drops the
    next accepted connection / fails the next request read, consumed on
    use). [queue=full] alone is accepted as shorthand for
    [queue=full:fail]. Examples: ["ilp=3:limit"],
    ["stage=sketch:infeasible"],
    ["stage=refine,group=2:raise; worker=1:crash"],
    ["store=checksum:fail"], ["queue=full"], ["net=read:fail"],
    ["lp=singular:reject"]. The [lp=] directives must never change an
    answer: {!Lp.Simplex.resolve} degrades a rejected or unusable warm
    start to an internal cold solve. *)

type action = Force_limit | Force_infeasible | Force_raise

type store_fault = Store_read | Store_checksum

type net_fault = Net_accept | Net_read

type wal_fault = Wal_torn of int | Wal_fsync_fail | Wal_crash of int

type lp_fault = Lp_warm_drop | Lp_singular

type shard_fault = Shard_crash | Shard_stall of int | Shard_drop

type partition_fault = Partition_level of int | Partition_build

type stoch_fault = Stoch_scenario | Stoch_validate

type fence_fault = Fence_lease_expire | Fence_epoch_stale

type cond = {
  on_call : int option;
  on_stage : Eval.stage option;
  on_group : int option;
}

type directive =
  | Ilp_fault of cond * action
  | Worker_kill of int
  | Store_break of store_fault
  | Queue_full
  | Net_break of net_fault
  | Wal_break of wal_fault
  | Lp_break of lp_fault
  | Shard_break of int * shard_fault
  | Repl_lag of int
  | Partition_break of partition_fault
  | Stoch_break of stoch_fault
  | Fence_break of fence_fault

type spec = directive list

(** Raised by an ILP call matched by a [raise] directive, and inside a
    worker matched by a [crash] directive. *)
exception Injected of string

(** Parse a fault spec in the grammar above. *)
val parse : string -> (spec, string) result

(** Install a spec and reset the global ILP call counter. *)
val install : spec -> unit

(** Remove all faults and reset the call counter. *)
val clear : unit -> unit

val active : unit -> bool

(** Re-read [PKGQ_FAULTS] (also done once at module load; a malformed
    value is reported on stderr and ignored). *)
val install_from_env : unit -> unit

val env_var : string

(** [solve ?limits ?deadline ?warm ?basis_out ~stage ?group p] is
    [Branch_bound.solve ~limits p] with the per-call [max_seconds]
    clamped to the budget remaining before [deadline], after applying
    any fault directive matching this call. Increments the global call
    counter even when a fault short-circuits the solver.

    [warm] seeds the root LP from a saved basis (subject to the [lp=]
    fault directives above); [basis_out], when given, receives the root
    relaxation's optimal basis for reuse on the next call with the same
    columns. *)
val solve :
  ?limits:Ilp.Branch_bound.limits ->
  ?deadline:float ->
  ?warm:Lp.Simplex.Basis.t ->
  ?basis_out:Lp.Simplex.Basis.t option ref ->
  stage:Eval.stage ->
  ?group:int ->
  Lp.Problem.t ->
  Ilp.Branch_bound.result

(** Whether an [lp=...] directive of the given kind is installed. *)
val lp_fault : lp_fault -> bool

(** Whether an installed directive kills parallel worker [w]. *)
val worker_should_crash : int -> bool

(** The store-corruption directive to apply to the next segment read,
    if any ([Store.Segment] consults this on every read). *)
val store_fault : unit -> store_fault option

(** Whether a [queue=full] directive is installed: the service
    scheduler's admission check treats the queue as full while one is
    (every request is shed with a typed [rejected] failure). *)
val queue_full : unit -> bool

(** [take_net_fault f] consumes one pending [net=...] directive of kind
    [f], if armed. One-shot: [install] arms one occurrence per
    directive in the spec; each successful take disarms it. *)
val take_net_fault : net_fault -> bool

(** [take_shard_fault k] consumes one pending [shard=k:...] directive,
    if armed — same one-shot discipline as {!take_net_fault}. The
    coordinator consults this before every exchange with shard [k]. *)
val take_shard_fault : int -> shard_fault option

(** Whether a [partition=build:fail] directive is installed: the next
    hierarchy (or partition) build must raise {!Injected}. Standing
    while installed. *)
val partition_build_fails : unit -> bool

(** [take_level_fault k] consumes one pending [partition=level:k]
    directive, if armed — same one-shot discipline as
    {!take_net_fault}. The progressive driver consults this before each
    level's sketch. *)
val take_level_fault : int -> bool

(** Whether a [stoch=scenario:fail] directive is installed: scenario
    generation must raise {!Injected}. Standing while installed. *)
val stoch_scenario_fails : unit -> bool

(** Whether a [stoch=validate:fail] directive is installed:
    out-of-sample validation must raise {!Injected}. Standing while
    installed. *)
val stoch_validate_fails : unit -> bool

(** Whether a [fence=lease:expire] directive is installed: the server's
    write gate treats its lease as already expired and answers every
    write with a typed [fenced] error. Standing while installed. *)
val fence_lease_expires : unit -> bool

(** Whether a [fence=epoch:stale] directive is installed: the server's
    write gate treats every write's epoch stamp as stale (older than
    its promotion epoch) and refuses it typed. Standing while
    installed. *)
val fence_epoch_stale : unit -> bool

(** The installed [repl=lag:N] value (the largest, if several), or 0.
    Unlike the shard faults this is a standing condition: the WAL
    shipper re-reads it on every shipping cycle. *)
val repl_lag : unit -> int

(** [wal_write_fault ()] bumps the WAL-record counter (1-based, reset
    by {!install}) and reports the injected outcome for this record, if
    any: [`Torn] — the writer must persist only a prefix of the record
    and kill the process; [`Crash] — the writer must make the record
    durable, then kill the process before acknowledging.
    [Store.Wal.append] consults this on every record. *)
val wal_write_fault : unit -> [ `Torn | `Crash ] option

(** Whether a [wal=fsync:fail] directive is installed: every WAL sync
    reports failure, so the server must neither apply nor acknowledge
    the write. *)
val wal_fsync_fails : unit -> bool
