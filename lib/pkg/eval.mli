(** Shared result types, failure taxonomy and counters for the package
    evaluation methods (DIRECT, SKETCHREFINE, parallel refinement). *)

(** Where in the pipeline a failure originated — the ladder rung or
    evaluation phase that was executing. *)
type stage =
  | Sketch      (** the representative sketch ILP *)
  | Hybrid      (** a hybrid-sketch ILP (Section 4.4 fallback) *)
  | Refine      (** a sequential refine ILP (Algorithm 2) *)
  | Repair      (** Phase-3 repair of a parallel run (Section 4.5) *)
  | Direct      (** the single DIRECT ILP *)
  | Parallel    (** a Phase-1 parallel refine worker *)
  | Fallback    (** between ladder rungs / the sequential fallback *)
  | Progressive (** a per-level sketch of the coarse-to-fine descent *)
  | Scenario    (** stochastic scenario generation *)
  | Summary     (** a summary-ILP solve of the SummarySearch loop *)
  | Validate    (** out-of-sample validation of a candidate package *)

val stage_name : stage -> string

type failure_kind =
  | Deadline_exceeded   (** a wall-clock budget (global or per-call) ran out *)
  | Node_limit          (** branch-and-bound node budget exhausted *)
  | Iteration_limit     (** simplex pivot budget exhausted *)
  | Solver_error of string  (** unexpected solver outcome or exception *)
  | Data_error of string    (** bad input data (CSV, enumeration blow-up) *)
  | Worker_crash of string  (** a parallel worker domain died *)
  | Rejected of string
      (** the service layer's admission control shed the request before
          any evaluation work ran (queue full / overload) — a typed,
          immediate answer, never an unbounded wait *)
  | Fenced of string
      (** a write was refused because the serving node's membership
          lease expired or its epoch is superseded (it is no longer the
          shard's primary) — the caller should retry against the
          current primary, never treat the old ack path as live *)

(** A typed failure with enough context to tell graceful degradation
    apart from a crash: which budget/fault fired, on which ladder rung,
    for which group, in which worker. *)
type failure = {
  kind : failure_kind;
  stage : stage option;
  group : int option;   (** partition group id, when per-group *)
  worker : int option;  (** parallel worker index, when per-worker *)
}

val failure : ?stage:stage -> ?group:int -> ?worker:int -> failure_kind -> failure

(** Classify a {!Ilp.Branch_bound.Limit} outcome by its recorded stop
    reason: time maps to [Deadline_exceeded], pivots to
    [Iteration_limit], nodes (or an unclassified limit) to
    [Node_limit]. *)
val limit_failure :
  ?stage:stage -> ?group:int -> ?worker:int -> Ilp.Branch_bound.stats -> failure

(** Which partition groups a degraded distributed answer failed to
    serve at full fidelity. A group is {e stale} when its refine was
    served by a replica lagging the primary's WAL position, and
    {e omitted} when neither the owning shard nor its replica could be
    reached — the assembled package covers only the remaining groups
    and its constraints are evaluated without the missing groups'
    contributions. *)
type degradation = {
  stale_groups : int list;
  omitted_groups : int list;
  detail : string;  (** human-readable cause, e.g. "shard 2 and replica down" *)
}

type status =
  | Optimal
      (** every ILP subproblem was solved to proven optimality *)
  | Feasible of float
      (** a solver limit was hit; the payload is the worst relative
          optimality gap observed *)
  | Infeasible
  | Degraded of degradation
      (** a sharded evaluation answered with reduced fidelity rather
          than hanging or silently lying: the payload names exactly
          which groups were served stale or omitted. Never cacheable,
          never presented as a proven optimum. *)
  | Failed of failure
      (** the solver gave up with no usable answer — the analogue of
          the paper's CPLEX failures (memory/time kill), now typed *)

(** [failed ?stage ?group ?worker kind] is [Failed (failure ... kind)]. *)
val failed : ?stage:stage -> ?group:int -> ?worker:int -> failure_kind -> status

type counters = {
  mutable ilp_calls : int;
  mutable nodes : int;
  mutable simplex_iterations : int;
  mutable backtracks : int;
}

val fresh_counters : unit -> counters

(** Accumulate a branch-and-bound run into the counters. *)
val bump : counters -> Ilp.Branch_bound.result -> unit

type report = {
  status : status;
  package : Package.t option;
  objective : float option;  (** objective incl. constant term *)
  wall_time : float;         (** seconds *)
  counters : counters;
}

val report :
  status:status ->
  package:Package.t option ->
  objective:float option ->
  wall_time:float ->
  counters:counters ->
  report

(** {1 Stage timing}

    An optional observer for per-stage wall-clock latencies. The
    service layer installs one to feed its live histograms; with none
    installed, {!observe_stage} is a direct call. The observer must be
    cheap and must not raise. *)

(** [set_observer (Some f)] routes every {!observe_stage} duration to
    [f stage seconds]; [set_observer None] uninstalls. *)
val set_observer : (stage -> float -> unit) option -> unit

(** [observe_stage stage f] runs [f ()], reporting its wall-clock time
    to the installed observer (also on exception). *)
val observe_stage : stage -> (unit -> 'a) -> 'a

val pp_failure_kind : Format.formatter -> failure_kind -> unit
val pp_failure : Format.formatter -> failure -> unit
val pp_degradation : Format.formatter -> degradation -> unit
val pp_status : Format.formatter -> status -> unit
val pp_report : Format.formatter -> report -> unit
