let src = Logs.Src.create "pkgq.parallel" ~doc:"Parallel refinement driver"

module Log = (val Logs.src_log src : Logs.LOG)

let run ?(options = Sketch_refine.default_options) ?domains spec rel partition
    =
  let start = Unix.gettimeofday () in
  let deadline = start +. options.Sketch_refine.max_seconds in
  let solver_deadline =
    if options.Sketch_refine.propagate_deadline then Some deadline else None
  in
  let counters = Eval.fresh_counters () in
  let finish status package objective =
    Eval.report ~status ~package ~objective
      ~wall_time:(Unix.gettimeofday () -. start)
      ~counters
  in
  let sequential_fallback () =
    (* keep the already-spent counters visible in the final report, and
       hand the ladder only the budget that is actually left *)
    let remaining = deadline -. Unix.gettimeofday () in
    if options.Sketch_refine.propagate_deadline && remaining <= 0. then
      finish (Eval.failed ~stage:Eval.Fallback Eval.Deadline_exceeded) None None
    else begin
      let options =
        if options.Sketch_refine.propagate_deadline then
          { options with Sketch_refine.max_seconds = remaining }
        else options
      in
      let r = Sketch_refine.run ~options spec rel partition in
      counters.Eval.ilp_calls <-
        counters.Eval.ilp_calls + r.Eval.counters.Eval.ilp_calls;
      counters.Eval.nodes <- counters.Eval.nodes + r.Eval.counters.Eval.nodes;
      counters.Eval.simplex_iterations <-
        counters.Eval.simplex_iterations
        + r.Eval.counters.Eval.simplex_iterations;
      counters.Eval.backtracks <-
        counters.Eval.backtracks + r.Eval.counters.Eval.backtracks;
      finish r.Eval.status r.Eval.package r.Eval.objective
    end
  in
  let evaluate () =
    let ctx = Sketch.make_ctx spec rel partition in
    let m = Partition.num_groups partition in
    match
      Sketch.run ~limits:options.Sketch_refine.limits ?deadline:solver_deadline
        ctx counters
    with
    | Sketch.Sketch_failed f -> finish (Eval.Failed f) None None
    | Sketch.Sketch_infeasible ->
      (* nothing to parallelize; use the sequential fallback ladder *)
      sequential_fallback ()
    | Sketch.Sketched rep_counts ->
      let todo =
        Array.of_list
          (List.filter (fun j -> rep_counts.(j) > 0.) (List.init m Fun.id))
      in
      let k = Array.length todo in
      if k = 0 then
        (* empty package already complete *)
        finish Eval.Optimal
          (Some (Package.make rel []))
          (Some (Package.objective spec (Package.make rel [])))
      else begin
        (* Phase 1: optimistic parallel refinement against the initial
           sketch assignment. Each worker gets its own counters; results
           land in a pre-sized array, so no synchronization is needed
           beyond the joins. A worker body never lets an exception
           escape: a crash marks the worker's remaining stripe [`Failed]
           and the groups are repaired in Phase 3. *)
        let initial =
          { Refine.srep_counts = rep_counts; srefined = Array.make m None }
        in
        let results :
            [ `Feasible of (int * int) list
            | `Infeasible
            | `Failed of Eval.failure ]
            array =
          Array.make k `Infeasible
        in
        let workers =
          let requested =
            match domains with
            | Some d -> d
            | None -> Domain.recommended_domain_count ()
          in
          max 1 (min k requested)
        in
        let worker_counters =
          Array.init workers (fun _ -> Eval.fresh_counters ())
        in
        let spawn w =
          Domain.spawn (fun () ->
              let i = ref w in
              try
                if Faults.worker_should_crash w then
                  raise
                    (Faults.Injected
                       (Printf.sprintf "worker %d killed by fault injection" w));
                while !i < k do
                  results.(!i) <-
                    Refine.solve_group ~limits:options.Sketch_refine.limits
                      ?deadline:solver_deadline ctx worker_counters.(w) initial
                      todo.(!i);
                  i := !i + workers
                done
              with e ->
                let f =
                  Eval.failure ~stage:Eval.Parallel ~worker:w
                    (Eval.Worker_crash (Printexc.to_string e))
                in
                while !i < k do
                  results.(!i) <- `Failed f;
                  i := !i + workers
                done)
        in
        let handles = List.init workers spawn in
        (* join every domain even if one join raises — a leaked domain
           would keep mutating [results] under our feet *)
        List.iter
          (fun h ->
            try Domain.join h
            with e ->
              Log.warn (fun k ->
                  k "worker domain died: %s" (Printexc.to_string e)))
          handles;
        Array.iter
          (fun wc ->
            counters.Eval.ilp_calls <-
              counters.Eval.ilp_calls + wc.Eval.ilp_calls;
            counters.Eval.nodes <- counters.Eval.nodes + wc.Eval.nodes;
            counters.Eval.simplex_iterations <-
              counters.Eval.simplex_iterations + wc.Eval.simplex_iterations)
          worker_counters;
        (* Phase 2: sequential validation — accept a group's parallel
           answer only if the assignment stays within every global
           constraint once merged (remaining groups still represented). *)
        let merged_reps = Array.copy rep_counts in
        let merged_refined = Array.make m None in
        let rejected = ref [] in
        Array.iteri
          (fun i j ->
            match results.(i) with
            | `Feasible entries ->
              let saved = merged_reps.(j) in
              merged_reps.(j) <- 0.;
              merged_refined.(j) <- Some entries;
              let snapshot =
                { Refine.srep_counts = merged_reps; srefined = merged_refined }
              in
              if not (Refine.within_bounds ctx (Refine.totals ctx snapshot))
              then begin
                (* the optimistic answer no longer fits: undo *)
                merged_reps.(j) <- saved;
                merged_refined.(j) <- None;
                rejected := j :: !rejected
              end
            | `Infeasible -> rejected := j :: !rejected
            | `Failed _ -> rejected := j :: !rejected)
          todo;
        (* Phase 3: repair the rejected groups sequentially (Algorithm 2
           from the merged state). *)
        match
          Refine.run ~limits:options.Sketch_refine.limits ~deadline
            ~clamp:options.Sketch_refine.propagate_deadline ~stage:Eval.Repair
            ctx counters ~rep_counts:merged_reps ~refined:merged_refined
        with
        | Refine.Refined p ->
          finish Eval.Optimal (Some p) (Some (Package.objective spec p))
        | Refine.Refine_infeasible ->
          (* the paper's warning realized: local decisions reached
             infeasibility — fall back to the sequential ladder *)
          sequential_fallback ()
        | Refine.Refine_failed f -> finish (Eval.Failed f) None None
      end
  in
  (* The resilience contract: a report, never an exception. *)
  try evaluate () with
  | Faults.Injected msg ->
    finish (Eval.failed (Eval.Solver_error msg)) None None
  | e -> finish (Eval.failed (Eval.Solver_error (Printexc.to_string e))) None None
