type stage =
  | Sketch
  | Hybrid
  | Refine
  | Repair
  | Direct
  | Parallel
  | Fallback
  | Progressive
  | Scenario
  | Summary
  | Validate

let stage_name = function
  | Sketch -> "sketch"
  | Hybrid -> "hybrid"
  | Refine -> "refine"
  | Repair -> "repair"
  | Direct -> "direct"
  | Parallel -> "parallel"
  | Fallback -> "fallback"
  | Progressive -> "progressive"
  | Scenario -> "scenario"
  | Summary -> "summary"
  | Validate -> "validate"

type failure_kind =
  | Deadline_exceeded
  | Node_limit
  | Iteration_limit
  | Solver_error of string
  | Data_error of string
  | Worker_crash of string
  | Rejected of string
  | Fenced of string

type failure = {
  kind : failure_kind;
  stage : stage option;
  group : int option;
  worker : int option;
}

let failure ?stage ?group ?worker kind = { kind; stage; group; worker }

(* Map a Branch_bound [Limit] outcome to the taxonomy. An unclassified
   limit (old-style synthetic stats) is attributed to the node budget. *)
let limit_failure ?stage ?group ?worker (st : Ilp.Branch_bound.stats) =
  let kind =
    match st.Ilp.Branch_bound.stopped with
    | Some Ilp.Branch_bound.Stop_time -> Deadline_exceeded
    | Some Ilp.Branch_bound.Stop_iterations -> Iteration_limit
    | Some Ilp.Branch_bound.Stop_nodes | None -> Node_limit
  in
  failure ?stage ?group ?worker kind

type degradation = {
  stale_groups : int list;
  omitted_groups : int list;
  detail : string;
}

type status =
  | Optimal
  | Feasible of float
  | Infeasible
  | Degraded of degradation
  | Failed of failure

let failed ?stage ?group ?worker kind = Failed (failure ?stage ?group ?worker kind)

type counters = {
  mutable ilp_calls : int;
  mutable nodes : int;
  mutable simplex_iterations : int;
  mutable backtracks : int;
}

let fresh_counters () =
  { ilp_calls = 0; nodes = 0; simplex_iterations = 0; backtracks = 0 }

let bump c result =
  let stats = Ilp.Branch_bound.stats_of result in
  c.ilp_calls <- c.ilp_calls + 1;
  c.nodes <- c.nodes + stats.Ilp.Branch_bound.nodes;
  c.simplex_iterations <-
    c.simplex_iterations + stats.Ilp.Branch_bound.simplex_iterations

type report = {
  status : status;
  package : Package.t option;
  objective : float option;
  wall_time : float;
  counters : counters;
}

let report ~status ~package ~objective ~wall_time ~counters =
  { status; package; objective; wall_time; counters }

(* Per-stage latency observer (installed by the service layer). *)
let observer : (stage -> float -> unit) option Atomic.t = Atomic.make None

let set_observer f = Atomic.set observer f

let observe_stage stage f =
  match Atomic.get observer with
  | None -> f ()
  | Some h ->
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> h stage (Unix.gettimeofday () -. t0)) f

let pp_failure_kind ppf = function
  | Deadline_exceeded -> Format.pp_print_string ppf "deadline exceeded"
  | Node_limit -> Format.pp_print_string ppf "node limit"
  | Iteration_limit -> Format.pp_print_string ppf "iteration limit"
  | Solver_error msg -> Format.fprintf ppf "solver error: %s" msg
  | Data_error msg -> Format.fprintf ppf "data error: %s" msg
  | Worker_crash msg -> Format.fprintf ppf "worker crash: %s" msg
  | Rejected msg -> Format.fprintf ppf "rejected: %s" msg
  | Fenced msg -> Format.fprintf ppf "fenced: %s" msg

let pp_failure ppf f =
  pp_failure_kind ppf f.kind;
  let ctx =
    List.filter_map
      (fun x -> x)
      [
        Option.map (fun s -> "stage=" ^ stage_name s) f.stage;
        Option.map (fun g -> Printf.sprintf "group=%d" g) f.group;
        Option.map (fun w -> Printf.sprintf "worker=%d" w) f.worker;
      ]
  in
  if ctx <> [] then
    Format.fprintf ppf " [%s]" (String.concat ", " ctx)

let pp_int_list ppf ids =
  Format.fprintf ppf "[%s]" (String.concat "," (List.map string_of_int ids))

let pp_degradation ppf d =
  Format.fprintf ppf "stale %a, omitted %a (%s)" pp_int_list d.stale_groups
    pp_int_list d.omitted_groups d.detail

let pp_status ppf = function
  | Optimal -> Format.pp_print_string ppf "optimal"
  | Feasible gap -> Format.fprintf ppf "feasible (gap %.2f%%)" (gap *. 100.)
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Degraded d -> Format.fprintf ppf "degraded: %a" pp_degradation d
  | Failed f -> Format.fprintf ppf "failed: %a" pp_failure f

let pp_report ppf r =
  Format.fprintf ppf "%a" pp_status r.status;
  Option.iter (fun o -> Format.fprintf ppf ", obj=%g" o) r.objective;
  Format.fprintf ppf ", %.3fs, %d ILP call(s), %d node(s)" r.wall_time
    r.counters.ilp_calls r.counters.nodes;
  if r.counters.backtracks > 0 then
    Format.fprintf ppf ", %d backtrack(s)" r.counters.backtracks
