(** Parallel SKETCHREFINE — the parallelization the paper sketches as
    future work (Section 4.5) and warns about: refining several groups
    concurrently makes only local decisions, so combined results can be
    infeasible and need repair.

    Strategy (optimistic parallel refine):
    + the sketch runs as usual;
    + every group holding representatives is refined {e in parallel}
      (one ILP per group, fanned out over OCaml 5 domains), each
      against the {e initial} sketch package — i.e. every other group
      is assumed to contribute its representative aggregates;
    + a sequential validation pass merges the parallel answers in
      order, accepting a group's answer only if it still combines
      feasibly with everything merged so far (plus representatives for
      the rest);
    + rejected groups — the paper's predicted infeasibilities — are
      re-refined sequentially by Algorithm 2 from the merged state;
    + if even that fails, the whole evaluation falls back to plain
      {!Sketch_refine.run} with its fallback ladder.

    The result is always a feasible package (or a principled
    infeasible/failed report), never a torn merge.

    Resilience: Phase-1 workers run under the propagated deadline (see
    {!Sketch_refine.options.propagate_deadline}); a worker body never
    lets an exception escape — a crash (including an injected
    [worker=W:crash] fault) marks the worker's stripe of groups
    [`Failed] and they are repaired in Phase 3; all domains are joined
    even when one fails; and the sequential fallback receives only the
    remaining wall budget, not a fresh one. *)

(** [run ?options ?domains spec rel partition] — [domains] caps the
    worker count (default [Domain.recommended_domain_count ()],
    at most the number of groups to refine). *)
val run :
  ?options:Sketch_refine.options ->
  ?domains:int ->
  Paql.Translate.spec ->
  Relalg.Relation.t ->
  Partition.t ->
  Eval.report
